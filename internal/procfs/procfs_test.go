package procfs

import (
	"errors"
	"os"
	"path/filepath"
	"strconv"
	"testing"
	"time"

	"powerdiv/internal/units"
)

// fakeProc builds a synthetic proc tree.
type fakeProc struct {
	t    *testing.T
	root string
}

func newFakeProc(t *testing.T) *fakeProc {
	t.Helper()
	return &fakeProc{t: t, root: t.TempDir()}
}

func (f *fakeProc) writeStat(content string) {
	f.t.Helper()
	if err := os.WriteFile(filepath.Join(f.root, "stat"), []byte(content), 0o644); err != nil {
		f.t.Fatal(err)
	}
}

func (f *fakeProc) writeProc(pid int, comm string, utime, stime uint64) {
	f.t.Helper()
	dir := filepath.Join(f.root, strconv.Itoa(pid))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		f.t.Fatal(err)
	}
	// pid (comm) state ppid pgrp session tty tpgid flags minflt cminflt
	// majflt cmajflt utime stime ...
	line := strconv.Itoa(pid) + " (" + comm + ") R 1 1 1 0 -1 4194304 100 0 0 0 " +
		strconv.FormatUint(utime, 10) + " " + strconv.FormatUint(stime, 10) +
		" 0 0 20 0 1 0 100 0 0\n"
	if err := os.WriteFile(filepath.Join(dir, "stat"), []byte(line), 0o644); err != nil {
		f.t.Fatal(err)
	}
}

func TestReadCPUTotals(t *testing.T) {
	f := newFakeProc(t)
	//            user nice sys  idle iow irq sirq steal
	f.writeStat("cpu  100  0    50   800  50  0   0    0 0 0\ncpu0 100 0 50 800 50 0 0 0 0 0\n")
	fs := New(f.root, 100)
	tot, err := fs.ReadCPUTotals()
	if err != nil {
		t.Fatal(err)
	}
	if tot.Busy != units.CPUTime(1500*time.Millisecond) {
		t.Errorf("Busy = %v, want 1.5s", tot.Busy)
	}
	if tot.Idle != units.CPUTime(8500*time.Millisecond) {
		t.Errorf("Idle = %v, want 8.5s", tot.Idle)
	}
	if tot.Total() != units.CPUTime(10*time.Second) {
		t.Errorf("Total = %v, want 10s", tot.Total())
	}
}

func TestReadCPUTotalsErrors(t *testing.T) {
	fs := New(filepath.Join(t.TempDir(), "missing"), 0)
	if _, err := fs.ReadCPUTotals(); err == nil {
		t.Error("missing stat accepted")
	}
	f := newFakeProc(t)
	f.writeStat("intr 12345\n")
	if _, err := New(f.root, 0).ReadCPUTotals(); err == nil {
		t.Error("stat without cpu line accepted")
	}
	f.writeStat("cpu garbage 0 0 0\n")
	if _, err := New(f.root, 0).ReadCPUTotals(); err == nil {
		t.Error("garbage cpu line accepted")
	}
}

func TestReadProc(t *testing.T) {
	f := newFakeProc(t)
	f.writeProc(42, "stress-ng", 250, 50)
	fs := New(f.root, 100)
	p, err := fs.ReadProc(42)
	if err != nil {
		t.Fatal(err)
	}
	if p.Command != "stress-ng" {
		t.Errorf("Command = %q", p.Command)
	}
	if p.User != units.CPUTime(2500*time.Millisecond) {
		t.Errorf("User = %v, want 2.5s", p.User)
	}
	if p.System != units.CPUTime(500*time.Millisecond) {
		t.Errorf("System = %v, want 0.5s", p.System)
	}
	if p.Total() != units.CPUTime(3*time.Second) {
		t.Errorf("Total = %v, want 3s", p.Total())
	}
}

func TestReadProcCommandWithSpacesAndParens(t *testing.T) {
	// procfs(5): comm can contain spaces and parentheses; parse to the
	// LAST closing paren.
	f := newFakeProc(t)
	f.writeProc(7, "weird (name) here", 100, 0)
	p, err := New(f.root, 100).ReadProc(7)
	if err != nil {
		t.Fatal(err)
	}
	if p.Command != "weird (name) here" {
		t.Errorf("Command = %q", p.Command)
	}
	if p.User != units.CPUTime(time.Second) {
		t.Errorf("User = %v, want 1s", p.User)
	}
}

func TestReadProcErrors(t *testing.T) {
	f := newFakeProc(t)
	fs := New(f.root, 100)
	if _, err := fs.ReadProc(999); err == nil {
		t.Error("missing pid accepted")
	}
	dir := filepath.Join(f.root, "13")
	os.MkdirAll(dir, 0o755)
	os.WriteFile(filepath.Join(dir, "stat"), []byte("13 no-parens R 1\n"), 0o644)
	if _, err := fs.ReadProc(13); err == nil {
		t.Error("malformed stat accepted")
	}
	os.WriteFile(filepath.Join(dir, "stat"), []byte("13 (x) R 1 2\n"), 0o644)
	if _, err := fs.ReadProc(13); err == nil {
		t.Error("truncated stat accepted")
	}
}

func TestListPIDs(t *testing.T) {
	f := newFakeProc(t)
	f.writeProc(1, "init", 0, 0)
	f.writeProc(42, "stress", 0, 0)
	os.MkdirAll(filepath.Join(f.root, "sys"), 0o755) // non-numeric: skipped
	pids, err := New(f.root, 100).ListPIDs()
	if err != nil {
		t.Fatal(err)
	}
	if len(pids) != 2 {
		t.Fatalf("pids = %v, want [1 42]", pids)
	}
}

func TestTrackerDeltas(t *testing.T) {
	f := newFakeProc(t)
	f.writeProc(10, "a", 100, 0)
	f.writeProc(11, "b", 200, 0)
	tr := NewTracker(New(f.root, 100))

	first := tr.Sample([]int{10, 11})
	if first[10] != 0 || first[11] != 0 {
		t.Errorf("first sample deltas = %v, want zeros", first)
	}

	f.writeProc(10, "a", 150, 10) // +60 jiffies = 600 ms
	f.writeProc(11, "b", 200, 0)  // unchanged
	second := tr.Sample([]int{10, 11})
	if second[10] != units.CPUTime(600*time.Millisecond) {
		t.Errorf("pid 10 delta = %v, want 600ms", second[10])
	}
	if second[11] != 0 {
		t.Errorf("pid 11 delta = %v, want 0", second[11])
	}
}

func TestTrackerExitAndReuse(t *testing.T) {
	f := newFakeProc(t)
	f.writeProc(10, "a", 1000, 0)
	tr := NewTracker(New(f.root, 100))
	tr.Sample([]int{10})

	// Process exits.
	os.RemoveAll(filepath.Join(f.root, "10"))
	gone := tr.Sample([]int{10})
	if _, ok := gone[10]; ok {
		t.Error("exited process still reported")
	}

	// A new process reuses the PID with lower counters: first observation
	// again (no negative delta).
	f.writeProc(10, "fresh", 5, 0)
	again := tr.Sample([]int{10})
	if again[10] != 0 {
		t.Errorf("reused PID delta = %v, want 0", again[10])
	}
}

func TestTrackerPIDReuseWithoutGap(t *testing.T) {
	// Same PID, counters went backwards between consecutive samples: the
	// delta clamps to zero instead of going negative.
	f := newFakeProc(t)
	f.writeProc(10, "a", 1000, 0)
	tr := NewTracker(New(f.root, 100))
	tr.Sample([]int{10})
	f.writeProc(10, "b", 5, 0)
	got := tr.Sample([]int{10})
	if got[10] != 0 {
		t.Errorf("backwards counter delta = %v, want 0", got[10])
	}
}

func TestDefaults(t *testing.T) {
	fs := New("", 0)
	if fs.root != DefaultRoot || fs.hz != DefaultHz {
		t.Errorf("defaults = %q/%d", fs.root, fs.hz)
	}
}

func TestReadProcNumThreads(t *testing.T) {
	f := newFakeProc(t)
	f.writeProc(42, "stress-ng", 250, 50)
	p, err := New(f.root, 100).ReadProc(42)
	if err != nil {
		t.Fatal(err)
	}
	// The fake stat line writes "1" at the num_threads position.
	if p.NumThreads != 1 {
		t.Errorf("NumThreads = %d, want 1", p.NumThreads)
	}
}

func TestSampleDetailed(t *testing.T) {
	f := newFakeProc(t)
	f.writeProc(10, "a", 100, 0)
	tr := NewTracker(New(f.root, 100))
	tr.SampleDetailed([]int{10})
	f.writeProc(10, "a", 150, 0)
	got := tr.SampleDetailed([]int{10})
	if got[10].CPUTime != units.CPUTime(500*time.Millisecond) {
		t.Errorf("delta = %v, want 500ms", got[10].CPUTime)
	}
	if got[10].NumThreads != 1 {
		t.Errorf("NumThreads = %d, want 1", got[10].NumThreads)
	}
}

func TestReadCurFreqKHz(t *testing.T) {
	root := t.TempDir()
	dir := filepath.Join(root, "cpu0", "cpufreq")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "scaling_cur_freq"), []byte("3600000\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	khz, err := ReadCurFreqKHz(root, 0)
	if err != nil {
		t.Fatal(err)
	}
	if khz != 3600000 {
		t.Errorf("freq = %d kHz, want 3600000", khz)
	}
	if _, err := ReadCurFreqKHz(root, 1); err == nil {
		t.Error("missing cpu accepted")
	}
	os.WriteFile(filepath.Join(dir, "scaling_cur_freq"), []byte("garbage\n"), 0o644)
	if _, err := ReadCurFreqKHz(root, 0); err == nil {
		t.Error("garbage frequency accepted")
	}
}

// NewReader routes every file read through the injected reader — the seam
// the fault-injection harness attacks.
func TestNewReaderRoutesReads(t *testing.T) {
	f := newFakeProc(t)
	f.writeStat("cpu  100 0 50 800 50 0 0 0 0 0\n")
	f.writeProc(10, "worker", 100, 0)
	reads := 0
	fs := NewReader(f.root, 100, func(path string) ([]byte, error) {
		reads++
		return os.ReadFile(path)
	})
	if _, err := fs.ReadCPUTotals(); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.ReadProc(10); err != nil {
		t.Fatal(err)
	}
	if reads != 2 {
		t.Errorf("reads = %d, want 2", reads)
	}
}

// A transient (non-ENOENT) read error must not be mistaken for process
// exit: the baseline is kept and the next successful delta spans the gap.
func TestTrackerTransientErrorKeepsBaseline(t *testing.T) {
	f := newFakeProc(t)
	f.writeProc(10, "worker", 0, 0)
	fail := false
	fs := NewReader(f.root, 100, func(path string) ([]byte, error) {
		if fail {
			return nil, errors.New("transient")
		}
		return os.ReadFile(path)
	})
	tr := NewTracker(fs)
	tr.Sample([]int{10})

	// The process burns 1 s but the read fails: no delta this tick.
	f.writeProc(10, "worker", 100, 0)
	fail = true
	if out := tr.Sample([]int{10}); len(out) != 0 {
		t.Fatalf("failed read produced a delta: %v", out)
	}

	// It burns another second and the read recovers: the delta covers
	// both intervals.
	fail = false
	f.writeProc(10, "worker", 200, 0)
	out := tr.Sample([]int{10})
	if out[10] != units.CPUTime(2*time.Second) {
		t.Errorf("delta = %v, want 2s (the gap's CPU time was lost)", out[10])
	}
}

// A true exit (ENOENT) still drops the baseline, so a reused PID starts
// from scratch.
func TestTrackerExitStillDropsBaseline(t *testing.T) {
	f := newFakeProc(t)
	f.writeProc(10, "worker", 100, 0)
	fs := New(f.root, 100)
	tr := NewTracker(fs)
	tr.Sample([]int{10})
	if err := os.RemoveAll(filepath.Join(f.root, "10")); err != nil {
		t.Fatal(err)
	}
	if out := tr.Sample([]int{10}); len(out) != 0 {
		t.Fatalf("exited pid produced a delta: %v", out)
	}
	// Reused PID with fresh (lower) counters: first observation, zero delta.
	f.writeProc(10, "worker", 5, 0)
	out := tr.Sample([]int{10})
	if out[10] != 0 {
		t.Errorf("reused pid delta = %v, want 0", out[10])
	}
}

func TestReadCurFreqKHzReader(t *testing.T) {
	root := t.TempDir()
	dir := filepath.Join(root, "cpu0", "cpufreq")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "scaling_cur_freq"), []byte("3600000\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	reads := 0
	khz, err := ReadCurFreqKHzReader(root, 0, func(path string) ([]byte, error) {
		reads++
		return os.ReadFile(path)
	})
	if err != nil || khz != 3600000 || reads != 1 {
		t.Errorf("khz = %d, err = %v, reads = %d", khz, err, reads)
	}
	boom := errors.New("boom")
	if _, err := ReadCurFreqKHzReader(root, 0, func(string) ([]byte, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Errorf("err = %v, want boom", err)
	}
}

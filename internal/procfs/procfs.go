// Package procfs reads per-process and machine-wide CPU time from a Linux
// /proc filesystem — the scheduler metrics CPU-time-share models
// (Scaphandre) divide power with. The root directory is a parameter so
// tests run against a synthetic tree and the live meter runs against /proc.
package procfs

import (
	"errors"
	"fmt"
	iofs "io/fs"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"powerdiv/internal/units"
)

// DefaultRoot is the real procfs mount point.
const DefaultRoot = "/proc"

// DefaultHz is the kernel's USER_HZ: jiffies per second for the utime/stime
// fields. Virtually every Linux build uses 100.
const DefaultHz = 100

// ReadFileFunc abstracts os.ReadFile so a fault-injection harness (see
// internal/faultfs) can wrap the proc tree's reads.
type ReadFileFunc func(string) ([]byte, error)

// FS reads a procfs tree.
type FS struct {
	root     string
	hz       int
	readFile ReadFileFunc
}

// New returns an FS over the given root ("" = /proc) with the given
// USER_HZ (0 = 100).
func New(root string, hz int) *FS {
	return NewReader(root, hz, nil)
}

// NewReader is New with every file read routed through read
// (nil = os.ReadFile).
func NewReader(root string, hz int, read ReadFileFunc) *FS {
	if root == "" {
		root = DefaultRoot
	}
	if hz <= 0 {
		hz = DefaultHz
	}
	if read == nil {
		read = os.ReadFile
	}
	return &FS{root: root, hz: hz, readFile: read}
}

// jiffies converts a jiffy count to CPU time. Counts large enough to
// overflow the Duration multiply (≈292 years of CPU time) only occur in
// corrupt stat files; they are clamped so a hostile value cannot turn into
// a negative CPU time downstream.
func (fs *FS) jiffies(n uint64) units.CPUTime {
	const maxJiffies = uint64(math.MaxInt64 / time.Second)
	if n > maxJiffies {
		n = maxJiffies
	}
	return units.CPUTime(time.Duration(n) * time.Second / time.Duration(fs.hz))
}

// CPUTotals is the machine-wide CPU accounting from the first line of
// /proc/stat.
type CPUTotals struct {
	Busy units.CPUTime // user+nice+system+irq+softirq+steal
	Idle units.CPUTime // idle+iowait
}

// Total returns busy + idle.
func (c CPUTotals) Total() units.CPUTime { return c.Busy + c.Idle }

// ReadCPUTotals parses the aggregate "cpu" line of /proc/stat.
func (fs *FS) ReadCPUTotals() (CPUTotals, error) {
	b, err := fs.readFile(filepath.Join(fs.root, "stat"))
	if err != nil {
		return CPUTotals{}, fmt.Errorf("procfs: %w", err)
	}
	for _, line := range strings.Split(string(b), "\n") {
		fields := strings.Fields(line)
		if len(fields) < 5 || fields[0] != "cpu" {
			continue
		}
		// cpu user nice system idle iowait irq softirq steal guest guest_nice
		var vals []uint64
		for _, f := range fields[1:] {
			v, err := strconv.ParseUint(f, 10, 64)
			if err != nil {
				return CPUTotals{}, fmt.Errorf("procfs: stat field %q: %w", f, err)
			}
			vals = append(vals, v)
		}
		get := func(i int) uint64 {
			if i < len(vals) {
				return vals[i]
			}
			return 0
		}
		busy := get(0) + get(1) + get(2) + get(5) + get(6) + get(7)
		idle := get(3) + get(4)
		return CPUTotals{Busy: fs.jiffies(busy), Idle: fs.jiffies(idle)}, nil
	}
	return CPUTotals{}, fmt.Errorf("procfs: no cpu line in %s/stat", fs.root)
}

// ProcCPU is one process's cumulative CPU time split.
type ProcCPU struct {
	PID     int
	Command string
	// User and System are cumulative utime/stime.
	User   units.CPUTime
	System units.CPUTime
	// NumThreads is the process's thread count (stat field 20).
	NumThreads int
}

// Total returns user + system time.
func (p ProcCPU) Total() units.CPUTime { return p.User + p.System }

// ReadProc parses /proc/<pid>/stat. It handles commands containing spaces
// and parentheses per the procfs(5) rules (scan for the last ')').
func (fs *FS) ReadProc(pid int) (ProcCPU, error) {
	b, err := fs.readFile(filepath.Join(fs.root, strconv.Itoa(pid), "stat"))
	if err != nil {
		return ProcCPU{}, fmt.Errorf("procfs: pid %d: %w", pid, err)
	}
	s := string(b)
	open := strings.IndexByte(s, '(')
	close := strings.LastIndexByte(s, ')')
	if open < 0 || close < open {
		return ProcCPU{}, fmt.Errorf("procfs: pid %d: malformed stat", pid)
	}
	command := s[open+1 : close]
	rest := strings.Fields(s[close+1:])
	// rest[0] is field 3 (state); utime is field 14, stime field 15.
	if len(rest) < 13 {
		return ProcCPU{}, fmt.Errorf("procfs: pid %d: truncated stat (%d fields after comm)", pid, len(rest))
	}
	utime, err := strconv.ParseUint(rest[11], 10, 64)
	if err != nil {
		return ProcCPU{}, fmt.Errorf("procfs: pid %d utime: %w", pid, err)
	}
	stime, err := strconv.ParseUint(rest[12], 10, 64)
	if err != nil {
		return ProcCPU{}, fmt.Errorf("procfs: pid %d stime: %w", pid, err)
	}
	p := ProcCPU{
		PID:     pid,
		Command: command,
		User:    fs.jiffies(utime),
		System:  fs.jiffies(stime),
	}
	// num_threads is field 20 (rest index 17); tolerate truncated stats,
	// which simply leave the count unknown.
	if len(rest) > 17 {
		if n, err := strconv.Atoi(rest[17]); err == nil && n > 0 {
			p.NumThreads = n
		}
	}
	return p, nil
}

// ReadCurFreqKHz reads a CPU's current frequency in kHz from the cpufreq
// sysfs tree rooted at root (pass DefaultCPUFreqRoot on a real machine).
func ReadCurFreqKHz(root string, cpu int) (uint64, error) {
	return ReadCurFreqKHzReader(root, cpu, nil)
}

// ReadCurFreqKHzReader is ReadCurFreqKHz with the file read routed through
// read (nil = os.ReadFile).
func ReadCurFreqKHzReader(root string, cpu int, read ReadFileFunc) (uint64, error) {
	if read == nil {
		read = os.ReadFile
	}
	path := filepath.Join(root, fmt.Sprintf("cpu%d", cpu), "cpufreq", "scaling_cur_freq")
	b, err := read(path)
	if err != nil {
		return 0, fmt.Errorf("procfs: %w", err)
	}
	v, err := strconv.ParseUint(strings.TrimSpace(string(b)), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("procfs: parsing %s: %w", path, err)
	}
	return v, nil
}

// DefaultCPUFreqRoot is the real cpufreq sysfs location.
const DefaultCPUFreqRoot = "/sys/devices/system/cpu"

// ListPIDs returns the numeric directory entries of the tree.
func (fs *FS) ListPIDs() ([]int, error) {
	entries, err := os.ReadDir(fs.root)
	if err != nil {
		return nil, fmt.Errorf("procfs: %w", err)
	}
	var pids []int
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		pid, err := strconv.Atoi(e.Name())
		if err != nil || pid <= 0 {
			continue
		}
		pids = append(pids, pid)
	}
	return pids, nil
}

// Tracker samples a set of processes and reports per-interval CPU-time
// deltas, the jiffy accounting a Scaphandre-style meter consumes.
type Tracker struct {
	fs   *FS
	last map[int]units.CPUTime
}

// NewTracker returns a tracker over the filesystem.
func NewTracker(fs *FS) *Tracker {
	return &Tracker{fs: fs, last: map[int]units.CPUTime{}}
}

// ProcDelta is one interval's per-process observation.
type ProcDelta struct {
	CPUTime    units.CPUTime
	NumThreads int
}

// Sample reads the given processes and returns each one's CPU time consumed
// since the previous Sample call (zero on first observation). Processes
// that have exited are silently dropped from the result. A transient read
// error (anything but not-exist) keeps the process's baseline: the next
// successful read's delta then spans the gap, so no CPU time is lost.
func (t *Tracker) Sample(pids []int) map[int]units.CPUTime {
	detailed := t.SampleDetailed(pids)
	out := make(map[int]units.CPUTime, len(detailed))
	for pid, d := range detailed {
		out[pid] = d.CPUTime
	}
	return out
}

// SampleDetailed is Sample plus each process's current thread count.
func (t *Tracker) SampleDetailed(pids []int) map[int]ProcDelta {
	out := make(map[int]ProcDelta, len(pids))
	seen := make(map[int]bool, len(pids))
	for _, pid := range pids {
		cur, err := t.fs.ReadProc(pid)
		if err != nil {
			if !errors.Is(err, iofs.ErrNotExist) {
				// Transient failure, not an exit: keep the baseline so
				// the next successful read's delta covers this gap.
				if _, ok := t.last[pid]; ok {
					seen[pid] = true
				}
			}
			continue
		}
		seen[pid] = true
		total := cur.Total()
		d := ProcDelta{NumThreads: cur.NumThreads}
		if prev, ok := t.last[pid]; ok {
			delta := total - prev
			if delta < 0 {
				delta = 0 // PID reuse: a new process with the same PID
			}
			d.CPUTime = delta
		}
		out[pid] = d
		t.last[pid] = total
	}
	for pid := range t.last {
		if !seen[pid] {
			delete(t.last, pid)
		}
	}
	return out
}

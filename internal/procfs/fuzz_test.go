package procfs

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzReadProc feeds arbitrary bytes as a /proc/<pid>/stat file: the
// parser must never panic and must either error or return sane values.
func FuzzReadProc(f *testing.F) {
	f.Add("42 (stress-ng) R 1 1 1 0 -1 4194304 100 0 0 0 250 50 0 0 20 0 1 0 100 0 0")
	f.Add("7 (weird (name) here) R 1 1 1 0 -1 0 0 0 0 0 100 0 0 0 20 0 1 0 0 0 0")
	f.Add("13 no-parens R 1")
	f.Add("")
	f.Add("1 () Z")
	f.Add("9 (a) R 1 2 3 4 5 6 7 8 9 10 -11 -12 13 14")
	f.Fuzz(func(t *testing.T, stat string) {
		root := t.TempDir()
		dir := filepath.Join(root, "42")
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Skip()
		}
		if err := os.WriteFile(filepath.Join(dir, "stat"), []byte(stat), 0o644); err != nil {
			t.Skip()
		}
		p, err := New(root, 100).ReadProc(42)
		if err != nil {
			return
		}
		if p.User < 0 || p.System < 0 {
			t.Errorf("negative CPU time from %q: %+v", stat, p)
		}
		if p.PID != 42 {
			t.Errorf("PID = %d", p.PID)
		}
	})
}

// FuzzReadCPUTotals feeds arbitrary /proc/stat contents.
func FuzzReadCPUTotals(f *testing.F) {
	f.Add("cpu  100 0 50 800 50 0 0 0 0 0\n")
	f.Add("cpu 1 2\n")
	f.Add("intr 12345\n")
	f.Add("")
	f.Add("cpu " + "18446744073709551615 18446744073709551615\n")
	f.Fuzz(func(t *testing.T, stat string) {
		root := t.TempDir()
		if err := os.WriteFile(filepath.Join(root, "stat"), []byte(stat), 0o644); err != nil {
			t.Skip()
		}
		tot, err := New(root, 100).ReadCPUTotals()
		if err != nil {
			return
		}
		if tot.Busy < 0 || tot.Idle < 0 {
			t.Errorf("negative totals from %q: %+v", stat, tot)
		}
	})
}

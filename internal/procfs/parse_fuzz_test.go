package procfs

import (
	"strings"
	"testing"
)

// FuzzParseStat drives both stat parsers and the Tracker through the
// NewReader seam — no filesystem, so the fuzzer explores the parsing logic
// itself. Properties: no panic; a successful parse never yields negative or
// wrapped CPU times (the jiffy clamp); and sampling the same unchanged stat
// twice always reports a zero delta.
func FuzzParseStat(f *testing.F) {
	f.Add("42 (stress-ng) R 1 1 1 0 -1 4194304 100 0 0 0 250 50 0 0 20 0 3 0 100 0 0",
		"cpu  100 0 50 800 50 0 0 0 0 0\n")
	f.Add("42 (weird (name) here) R 1 1 1 0 -1 0 0 0 0 0 100 0 0 0 20 0 1 0 0 0 0",
		"cpu 1 2\nintr 9\n")
	// Huge jiffy counts: before the clamp these overflowed into negative
	// durations.
	f.Add("42 (big) R 1 1 1 0 -1 0 0 0 0 0 18446744073709551615 18446744073709551615 0 0 20 0 1 0 0 0 0",
		"cpu 18446744073709551615 18446744073709551615 1 2 3 4 5 6\n")
	f.Add("42 ()( R 1 2 3 4 5 6 7 8 9 10 11 12 13 14 15 16 17 18",
		"cpu\n")
	f.Add("", "")
	f.Fuzz(func(t *testing.T, procStat, machStat string) {
		fs := NewReader("/fuzz-proc", 100, func(path string) ([]byte, error) {
			if strings.HasSuffix(path, "/42/stat") {
				return []byte(procStat), nil
			}
			return []byte(machStat), nil
		})

		p, err := fs.ReadProc(42)
		if err == nil {
			if p.User < 0 || p.System < 0 || p.Total() < 0 {
				t.Errorf("negative CPU time from %q: %+v", procStat, p)
			}
			if p.NumThreads < 0 {
				t.Errorf("negative thread count from %q: %+v", procStat, p)
			}
		}

		tot, err := fs.ReadCPUTotals()
		if err == nil {
			if tot.Busy < 0 || tot.Idle < 0 || tot.Total() < 0 {
				t.Errorf("negative totals from %q: %+v", machStat, tot)
			}
		}

		// Tracker invariants over an unchanged stat file: the first
		// observation establishes the baseline (zero delta) and a re-read of
		// identical content must also be a zero delta — anything else would
		// invent CPU time.
		tr := NewTracker(fs)
		for round := 0; round < 2; round++ {
			for pid, d := range tr.SampleDetailed([]int{42}) {
				if d.CPUTime != 0 {
					t.Errorf("round %d: unchanged stat %q produced delta %v for pid %d", round, procStat, d.CPUTime, pid)
				}
				if d.NumThreads < 0 {
					t.Errorf("round %d: negative thread count %d", round, d.NumThreads)
				}
			}
		}
	})
}

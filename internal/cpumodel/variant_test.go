package cpumodel

import (
	"math"
	"testing"

	"powerdiv/internal/units"
)

func TestSpecVariant(t *testing.T) {
	base := SmallIntel()
	v := base.Variant("SMALL-INTEL/8c-fast", 8, 1.04)
	if err := v.Validate(); err != nil {
		t.Fatalf("variant invalid: %v", err)
	}
	if v.Name != "SMALL-INTEL/8c-fast" {
		t.Errorf("name %q", v.Name)
	}
	if v.Topology.CoresPerSocket != 8 || v.Topology.Sockets != base.Topology.Sockets {
		t.Errorf("topology %+v", v.Topology)
	}
	// Every frequency scales together, so the spec stays self-consistent.
	approx := func(got, want units.Hertz) bool {
		return math.Abs(float64(got)-float64(want)) <= 1e-6*math.Abs(float64(want))
	}
	if !approx(v.Freq.Base, units.Hertz(float64(base.Freq.Base)*1.04)) ||
		!approx(v.Freq.Min, units.Hertz(float64(base.Freq.Min)*1.04)) ||
		!approx(v.Freq.Turbo, units.Hertz(float64(base.Freq.Turbo)*1.04)) ||
		!approx(v.Power.BaseFreq, units.Hertz(float64(base.Power.BaseFreq)*1.04)) {
		t.Errorf("frequency domain not uniformly scaled: %+v", v.Freq)
	}
	// Residual at the (scaled) base frequency is the calibrated value: clock
	// skew shifts where the curve sits, not the calibrated watts.
	if got, want := v.Power.Residual.At(v.Freq.Base), base.Power.Residual.At(base.Freq.Base); got != want {
		t.Errorf("residual at base %v, want %v", got, want)
	}
	// The base spec is untouched (value semantics, including the curve).
	if base.Power.Residual.At(base.Freq.Base) != SmallIntel().Power.Residual.At(SmallIntel().Freq.Base) {
		t.Error("Variant mutated the base spec's residual curve")
	}

	// Zero/one arguments are no-ops on their fields.
	same := base.Variant("", 0, 1)
	if same.Name != base.Name || same.Topology != base.Topology || same.Freq != base.Freq {
		t.Errorf("identity variant changed the spec: %+v", same)
	}
}

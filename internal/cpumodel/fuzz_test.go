package cpumodel

import (
	"strings"
	"testing"
)

// FuzzParseCurveCSV feeds arbitrary CSV: the parser must never panic, and
// whatever it accepts must survive a Fit attempt without panicking either.
func FuzzParseCurveCSV(f *testing.F) {
	f.Add("cores,freq_ghz,power_w\n0,0,8\n1,3.6,43\n2,3.6,50\n")
	f.Add("0,0,8\n1,2.1,120\n")
	f.Add("x,y,z\n")
	f.Add("")
	f.Add("1,3.6\n")
	f.Add("-1,-3.6,-40\n")
	f.Add("999999999,1e308,1e308\n")
	f.Fuzz(func(t *testing.T, in string) {
		samples, err := ParseCurveCSV(strings.NewReader(in))
		if err != nil {
			return
		}
		if len(samples) == 0 {
			t.Error("accepted input produced no samples")
		}
		// Fitting may reject the data but must not panic.
		_, _ = FitPowerModel(samples, 0.3)
	})
}

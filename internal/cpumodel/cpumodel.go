// Package cpumodel contains the physical model of a CPU that the machine
// simulator is built on: topology, the frequency governor (DVFS + turbo),
// and the package power model.
//
// The power model follows the structure the paper establishes empirically in
// Section III:
//
//   - an idle floor, drawn whether or not anything runs;
//   - a residual consumption R that appears as soon as any core is under
//     load, is NOT cumulative across cores, and tracks the frequency of the
//     fastest running core (28 W at 3.6 GHz on SMALL INTEL, 17 W when the
//     frequency is capped to 2 GHz, 15 W at the 1.2 GHz nominal frequency);
//   - a per-core active cost, linear in the number of busy cores when
//     hyperthreading and turboboost are off (Fig 1), and sub-additive when
//     they are on (Fig 3): SMT sibling threads add only a fraction of a full
//     core's power, and turbo raises per-core power at low occupancy, which
//     together bend the curve into the logarithmic shape the paper reports.
//
// Duty-cycled loads (cgroup-style CPU caps) scale the residual: a core that
// is busy 50 % of the time at 3.6 GHz produces roughly half the residual of
// a fully busy core, matching the §IV-B observation that capped stresses
// produced 15 W of residual against 28 W uncapped.
package cpumodel

import (
	"fmt"
	"math"
	"sort"

	"powerdiv/internal/units"
)

// Topology describes the processor layout of a machine.
type Topology struct {
	Sockets        int
	CoresPerSocket int
	ThreadsPerCore int // 1 without hyperthreading, 2 with
}

// PhysicalCores returns the number of physical cores across all sockets.
func (t Topology) PhysicalCores() int { return t.Sockets * t.CoresPerSocket }

// LogicalCPUs returns the number of schedulable hardware threads.
func (t Topology) LogicalCPUs() int { return t.PhysicalCores() * t.ThreadsPerCore }

// Validate reports whether the topology is well formed.
func (t Topology) Validate() error {
	if t.Sockets <= 0 || t.CoresPerSocket <= 0 {
		return fmt.Errorf("cpumodel: invalid topology %+v", t)
	}
	if t.ThreadsPerCore != 1 && t.ThreadsPerCore != 2 {
		return fmt.Errorf("cpumodel: unsupported threads per core %d", t.ThreadsPerCore)
	}
	return nil
}

// FreqDomain describes the frequency behaviour of the CPU package.
type FreqDomain struct {
	// Min is the lowest operating frequency (the paper's "nominal"
	// frequency, 1.2 GHz on SMALL INTEL).
	Min units.Hertz
	// Base is the sustained all-core frequency with turboboost disabled.
	Base units.Hertz
	// Turbo is the single-core maximum with turboboost enabled.
	Turbo units.Hertz
	// TurboDerate is the frequency lost per additional active core when
	// turbo is enabled, modelling the all-core turbo limit.
	TurboDerate units.Hertz
}

// Validate reports whether the frequency domain is well formed.
func (f FreqDomain) Validate() error {
	if f.Min <= 0 || f.Base < f.Min || f.Turbo < f.Base || f.TurboDerate < 0 {
		return fmt.Errorf("cpumodel: invalid frequency domain %+v", f)
	}
	return nil
}

// ActiveFreq returns the frequency the package runs busy cores at, given the
// number of active physical cores and whether turboboost is enabled. With
// turbo off this is the base frequency; with turbo on it is the turbo
// frequency derated per active core, floored at base. maxFreq, if nonzero,
// caps the result (a cpufreq-style limit, used to reproduce the §III-B
// frequency-capping observations); the cap cannot go below Min.
func (f FreqDomain) ActiveFreq(activeCores int, turbo bool, maxFreq units.Hertz) units.Hertz {
	if activeCores <= 0 {
		return f.Min
	}
	freq := f.Base
	if turbo {
		freq = f.Turbo - units.Hertz(activeCores-1)*f.TurboDerate
		if freq < f.Base {
			freq = f.Base
		}
	}
	if maxFreq > 0 && freq > maxFreq {
		freq = maxFreq
	}
	if freq < f.Min {
		freq = f.Min
	}
	return freq
}

// FreqPoint is a calibration point of the residual curve.
type FreqPoint struct {
	Freq units.Hertz
	R    units.Watts
}

// ResidualCurve is a piecewise-linear interpolation of residual consumption
// as a function of the fastest busy core's frequency. Points must be sorted
// by frequency (NewResidualCurve sorts them).
type ResidualCurve struct {
	points []FreqPoint
}

// NewResidualCurve builds a residual curve from calibration points.
// It panics if no points are given, since a machine model without a
// residual curve is a construction error.
func NewResidualCurve(points ...FreqPoint) ResidualCurve {
	if len(points) == 0 {
		panic("cpumodel: residual curve needs at least one point")
	}
	pts := append([]FreqPoint(nil), points...)
	sort.Slice(pts, func(i, j int) bool { return pts[i].Freq < pts[j].Freq })
	return ResidualCurve{points: pts}
}

// At returns the residual consumption at frequency f, clamping outside the
// calibrated range to the end points.
func (c ResidualCurve) At(f units.Hertz) units.Watts {
	pts := c.points
	if len(pts) == 0 {
		return 0
	}
	if f <= pts[0].Freq {
		return pts[0].R
	}
	if f >= pts[len(pts)-1].Freq {
		return pts[len(pts)-1].R
	}
	i := sort.Search(len(pts), func(i int) bool { return pts[i].Freq >= f }) // pts[i-1].Freq < f <= pts[i].Freq
	lo, hi := pts[i-1], pts[i]
	frac := float64(f-lo.Freq) / float64(hi.Freq-lo.Freq)
	return lo.R + units.Watts(frac)*(hi.R-lo.R)
}

// Points returns a copy of the calibration points.
func (c ResidualCurve) Points() []FreqPoint { return append([]FreqPoint(nil), c.points...) }

// CoreLoad describes the load on one logical CPU during one simulation tick.
type CoreLoad struct {
	// Util is the fraction of the tick the logical CPU was busy, in [0,1].
	Util float64
	// CostAtBase is the full-core active power of the workload occupying
	// this logical CPU, at base frequency, per fully busy core.
	CostAtBase units.Watts
	// Freq is the frequency the core ran at while busy.
	Freq units.Hertz
	// SMTSibling marks the second hardware thread of a physical core whose
	// first thread is also busy; its active power is discounted by the
	// model's SMTEfficiency.
	SMTSibling bool
}

// PowerModel computes package power from per-core loads.
type PowerModel struct {
	// Idle is the floor drawn by the package regardless of load.
	Idle units.Watts
	// Residual is the load-induced residual consumption curve R(f).
	Residual ResidualCurve
	// FreqExponent is the exponent with which active per-core power scales
	// with frequency relative to base: cost × (f/base)^FreqExponent.
	// Dynamic CPU power scales roughly with f·V² and V tracks f, so values
	// around 2 are physical; 2 is the default used by the calibrations.
	FreqExponent float64
	// SMTEfficiency is the fraction of a full core's active power added by
	// a busy SMT sibling thread (≈0.3: the second hardware thread reuses
	// the already-powered execution units).
	SMTEfficiency float64
	// BaseFreq is the frequency at which CostAtBase is expressed.
	BaseFreq units.Hertz
}

// Breakdown is the decomposition of machine power for one tick.
type Breakdown struct {
	Idle     units.Watts
	Residual units.Watts
	// Active is the summed per-core active power.
	Active units.Watts
	// PerCore is the active power of each input load, index-aligned with
	// the loads passed to Power.
	PerCore []units.Watts
}

// Total returns idle + residual + active.
func (b Breakdown) Total() units.Watts { return b.Idle + b.Residual + b.Active }

// Power computes the package power decomposition for one tick given the
// per-logical-CPU loads. Loads with zero utilization contribute nothing.
//
// The residual term is R(f_max) scaled by the largest per-core duty factor,
// where f_max is the highest frequency among busy cores: residual is not
// cumulative (one busy core incurs all of it) but a machine whose busiest
// core is duty-cycled to 50 % only incurs half of it, because the package
// drops back toward idle states for the other half of the time.
func (m PowerModel) Power(loads []CoreLoad) Breakdown {
	return m.PowerInto(loads, nil)
}

// PowerInto is Power with a caller-provided per-core scratch buffer: the
// returned Breakdown's PerCore aliases perCore when it is large enough
// (fresh storage is allocated otherwise). Simulation tick loops use it to
// avoid one slice allocation per tick; the caller must copy PerCore before
// the next PowerInto call if it needs the values to persist.
func (m PowerModel) PowerInto(loads []CoreLoad, perCore []units.Watts) Breakdown {
	if cap(perCore) < len(loads) {
		perCore = make([]units.Watts, len(loads))
	} else {
		perCore = perCore[:len(loads)]
		for i := range perCore {
			perCore[i] = 0
		}
	}
	bd := Breakdown{Idle: m.Idle, PerCore: perCore}
	exp := m.FreqExponent
	if exp == 0 {
		exp = 2
	}
	// Within one tick every busy core runs at the governor's single
	// frequency, so the (f/base)^exp scale is the same for all of them:
	// memoizing the last distinct frequency turns per-core math.Pow calls
	// into one per tick. Identical inputs give identical outputs, so the
	// memo cannot perturb a single result bit.
	var lastFreq units.Hertz
	lastScale := 1.0
	haveScale := false
	var fMax units.Hertz
	maxDuty := 0.0
	for i, ld := range loads {
		if ld.Util <= 0 {
			continue
		}
		util := math.Min(ld.Util, 1)
		freq := ld.Freq
		if freq <= 0 {
			freq = m.BaseFreq
		}
		scale := 1.0
		if m.BaseFreq > 0 {
			if !haveScale || freq != lastFreq {
				lastScale = math.Pow(float64(freq)/float64(m.BaseFreq), exp)
				lastFreq, haveScale = freq, true
			}
			scale = lastScale
		}
		p := units.Watts(float64(ld.CostAtBase) * util * scale)
		if ld.SMTSibling {
			p = units.Watts(float64(p) * m.SMTEfficiency)
		}
		bd.PerCore[i] = p
		bd.Active += p
		if freq > fMax {
			fMax = freq
		}
		if util > maxDuty {
			maxDuty = util
		}
	}
	if maxDuty > 0 {
		bd.Residual = units.Watts(float64(m.Residual.At(fMax)) * maxDuty)
	}
	return bd
}

package cpumodel

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"

	"powerdiv/internal/units"
)

// ParseCurveCSV reads calibration sweep samples from CSV with the header
// "cores,freq_ghz,power_w" (header optional, column order fixed). The
// idle row uses cores 0; its frequency column is ignored. Blank lines and
// lines starting with '#' are skipped.
func ParseCurveCSV(r io.Reader) ([]CurveSample, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1 // validated manually for better messages
	cr.Comment = '#'
	var out []CurveSample
	line := 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("cpumodel: csv: %w", err)
		}
		line++
		if len(rec) == 0 {
			continue
		}
		// Header row.
		if line == 1 && strings.EqualFold(strings.TrimSpace(rec[0]), "cores") {
			continue
		}
		if len(rec) != 3 {
			return nil, fmt.Errorf("cpumodel: csv line %d: %d fields, want 3 (cores,freq_ghz,power_w)", line, len(rec))
		}
		cores, err := strconv.Atoi(strings.TrimSpace(rec[0]))
		if err != nil {
			return nil, fmt.Errorf("cpumodel: csv line %d: cores %q: %w", line, rec[0], err)
		}
		ghz, err := strconv.ParseFloat(strings.TrimSpace(rec[1]), 64)
		if err != nil {
			return nil, fmt.Errorf("cpumodel: csv line %d: freq %q: %w", line, rec[1], err)
		}
		power, err := strconv.ParseFloat(strings.TrimSpace(rec[2]), 64)
		if err != nil {
			return nil, fmt.Errorf("cpumodel: csv line %d: power %q: %w", line, rec[2], err)
		}
		out = append(out, CurveSample{
			Cores: cores,
			Freq:  units.Hertz(ghz) * units.GHz,
			Power: units.Watts(power),
		})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("cpumodel: csv: no samples")
	}
	return out, nil
}

// WriteCurveCSV writes samples in the ParseCurveCSV format.
func WriteCurveCSV(w io.Writer, samples []CurveSample) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"cores", "freq_ghz", "power_w"}); err != nil {
		return fmt.Errorf("cpumodel: csv: %w", err)
	}
	for _, s := range samples {
		rec := []string{
			strconv.Itoa(s.Cores),
			strconv.FormatFloat(s.Freq.GHz(), 'f', -1, 64),
			strconv.FormatFloat(float64(s.Power), 'f', -1, 64),
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("cpumodel: csv: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

package cpumodel

import (
	"math"
	"testing"

	"powerdiv/internal/units"
)

// sweepFrom synthesises sweep samples from a known model — the round-trip
// fixture for FitPowerModel.
func sweepFrom(m PowerModel, cost units.Watts, maxCores int, freqs []units.Hertz) []CurveSample {
	samples := []CurveSample{{Cores: 0, Power: m.Idle}}
	for _, f := range freqs {
		for n := 1; n <= maxCores; n++ {
			loads := make([]CoreLoad, n)
			for i := range loads {
				loads[i] = CoreLoad{Util: 1, CostAtBase: cost, Freq: f}
			}
			samples = append(samples, CurveSample{Cores: n, Freq: f, Power: m.Power(loads).Total()})
		}
	}
	return samples
}

func TestFitRecoversSmallIntel(t *testing.T) {
	truth := SmallIntel().Power
	const cost = 6.5
	freqs := []units.Hertz{1.2 * units.GHz, 2.0 * units.GHz, 3.6 * units.GHz}
	samples := sweepFrom(truth, cost, 6, freqs)

	res, err := FitPowerModel(samples, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Model.Idle != truth.Idle {
		t.Errorf("idle = %v, want %v", res.Model.Idle, truth.Idle)
	}
	if math.Abs(float64(res.ProbeCostAtBase-cost)) > 0.01 {
		t.Errorf("cost = %v, want %v", res.ProbeCostAtBase, cost)
	}
	if res.Model.BaseFreq != 3.6*units.GHz {
		t.Errorf("base freq = %v, want 3.6 GHz", res.Model.BaseFreq)
	}
	// Residual curve matches the paper's calibration points.
	for _, f := range freqs {
		got := res.Model.Residual.At(f)
		want := truth.Residual.At(f)
		if math.Abs(float64(got-want)) > 0.1 {
			t.Errorf("R(%v) = %v, want %v", f, got, want)
		}
	}
	// Frequency exponent ≈2.
	if math.Abs(res.Model.FreqExponent-2) > 0.05 {
		t.Errorf("exponent = %v, want 2", res.Model.FreqExponent)
	}
	// The fit is exact on noiseless data.
	for f, rms := range res.Residuals {
		if rms > 1e-9 {
			t.Errorf("RMS at %v = %v, want 0", f, rms)
		}
	}
}

func TestFitSingleFrequencyDefaultsExponent(t *testing.T) {
	truth := Dahu().Power
	samples := sweepFrom(truth, 1.5, 32, []units.Hertz{2.1 * units.GHz})
	res, err := FitPowerModel(samples, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Model.FreqExponent != 2 {
		t.Errorf("exponent = %v, want default 2", res.Model.FreqExponent)
	}
	if math.Abs(float64(res.Model.Residual.At(2.1*units.GHz)-79)) > 0.1 {
		t.Errorf("R = %v, want 79", res.Model.Residual.At(2.1*units.GHz))
	}
}

func TestFitRoundTripThroughModel(t *testing.T) {
	// Fitted model reproduces the original sweep powers.
	truth := SmallIntel().Power
	const cost = 5.0
	samples := sweepFrom(truth, cost, 6, []units.Hertz{1.2 * units.GHz, 3.6 * units.GHz})
	res, err := FitPowerModel(samples, truth.SMTEfficiency)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range samples {
		if s.Cores == 0 {
			continue
		}
		loads := make([]CoreLoad, s.Cores)
		for i := range loads {
			loads[i] = CoreLoad{Util: 1, CostAtBase: res.ProbeCostAtBase, Freq: s.Freq}
		}
		got := res.Model.Power(loads).Total()
		if math.Abs(float64(got-s.Power)) > 0.2 {
			t.Errorf("replay %d cores @ %v: %v, want %v", s.Cores, s.Freq, got, s.Power)
		}
	}
}

func TestFitNoisyData(t *testing.T) {
	truth := SmallIntel().Power
	samples := sweepFrom(truth, 6.0, 6, []units.Hertz{3.6 * units.GHz})
	// Perturb the loaded samples deterministically by ±0.3 W.
	for i := range samples {
		if samples[i].Cores == 0 {
			continue
		}
		if i%2 == 0 {
			samples[i].Power += 0.3
		} else {
			samples[i].Power -= 0.3
		}
	}
	res, err := FitPowerModel(samples, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(res.ProbeCostAtBase-6.0)) > 0.3 {
		t.Errorf("noisy cost = %v, want ≈6", res.ProbeCostAtBase)
	}
	if rms := res.Residuals[3.6*units.GHz]; rms < 0.1 || rms > 0.5 {
		t.Errorf("RMS = %v, want ≈0.3", rms)
	}
}

func TestFitErrors(t *testing.T) {
	good := sweepFrom(SmallIntel().Power, 6, 6, []units.Hertz{3.6 * units.GHz})
	cases := []struct {
		name    string
		samples []CurveSample
	}{
		{"empty", nil},
		{"no idle", good[1:]},
		{"no loaded", good[:1]},
		{"one point per freq", []CurveSample{{Cores: 0, Power: 8}, {Cores: 1, Freq: units.GHz, Power: 40}}},
		{"conflicting idle", append([]CurveSample{{Cores: 0, Power: 9}}, good...)},
		{"missing freq", []CurveSample{{Cores: 0, Power: 8}, {Cores: 1, Power: 40}, {Cores: 2, Power: 45}}},
		{"negative power", []CurveSample{{Cores: 0, Power: 8}, {Cores: 1, Freq: units.GHz, Power: -1}}},
		{"negative slope", []CurveSample{
			{Cores: 0, Power: 8},
			{Cores: 1, Freq: units.GHz, Power: 50},
			{Cores: 2, Freq: units.GHz, Power: 40},
		}},
	}
	for _, tc := range cases {
		if _, err := FitPowerModel(tc.samples, 0.3); err == nil {
			t.Errorf("%s: fit accepted", tc.name)
		}
	}
}

func TestLinearFitDegenerate(t *testing.T) {
	if _, _, _, err := linearFit([]CurveSample{
		{Cores: 2, Power: 10},
		{Cores: 2, Power: 12},
	}); err == nil {
		t.Error("degenerate fit accepted")
	}
}

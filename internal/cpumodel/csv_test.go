package cpumodel

import (
	"bytes"
	"strings"
	"testing"

	"powerdiv/internal/units"
)

func TestParseCurveCSV(t *testing.T) {
	in := `cores,freq_ghz,power_w
0,0,8
# a comment
1,3.6,43
2,3.6,50.1
`
	samples, err := ParseCurveCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 3 {
		t.Fatalf("%d samples, want 3", len(samples))
	}
	if samples[0].Cores != 0 || samples[0].Power != 8 {
		t.Errorf("idle sample = %+v", samples[0])
	}
	if samples[1].Freq != 3.6*units.GHz || samples[1].Power != 43 {
		t.Errorf("sample 1 = %+v", samples[1])
	}
	if samples[2].Power != 50.1 {
		t.Errorf("sample 2 = %+v", samples[2])
	}
}

func TestParseCurveCSVNoHeader(t *testing.T) {
	samples, err := ParseCurveCSV(strings.NewReader("0,0,8\n1,2.1,120\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 2 {
		t.Fatalf("%d samples, want 2", len(samples))
	}
}

func TestParseCurveCSVErrors(t *testing.T) {
	cases := map[string]string{
		"empty":       "",
		"short row":   "1,3.6\n",
		"bad cores":   "x,3.6,40\n",
		"bad freq":    "1,x,40\n",
		"bad power":   "1,3.6,x\n",
		"header only": "cores,freq_ghz,power_w\n",
	}
	for name, in := range cases {
		if _, err := ParseCurveCSV(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestCurveCSVRoundTrip(t *testing.T) {
	orig := sweepFrom(SmallIntel().Power, 6.5, 6, []units.Hertz{1.2 * units.GHz, 3.6 * units.GHz})
	var buf bytes.Buffer
	if err := WriteCurveCSV(&buf, orig); err != nil {
		t.Fatal(err)
	}
	back, err := ParseCurveCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(orig) {
		t.Fatalf("round trip %d samples, want %d", len(back), len(orig))
	}
	for i := range orig {
		if back[i] != orig[i] {
			t.Errorf("sample %d: %+v vs %+v", i, back[i], orig[i])
		}
	}
	// And the fit still works on the round-tripped data.
	res, err := FitPowerModel(back, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Model.Idle != 8 {
		t.Errorf("fitted idle = %v", res.Model.Idle)
	}
}

package cpumodel

import "powerdiv/internal/units"

// Variant derives a heterogeneous-fleet spec from a calibrated base: the
// same machine family at a different core count and clock. Fleet nodes
// bought across hardware generations share a calibration shape but differ
// in capacity and effective clock, and per-node clock skew (firmware,
// thermal headroom, silicon lottery) shifts the whole frequency domain by
// a factor close to 1.
//
// coresPerSocket, when positive, replaces the base topology's value.
// freqScale, when positive, multiplies every frequency in the spec — the
// domain's min/base/turbo/derate, the power model's base frequency and
// the residual curve's calibration frequencies — so the spec stays
// self-consistent: residual-at-base and active-cost-at-base are unchanged,
// the machine just runs its curve at shifted clocks. Calibrated watt
// values are deliberately untouched; sensor-grade differences are modelled
// by the simulator's noise configuration, not the spec.
func (s Spec) Variant(name string, coresPerSocket int, freqScale float64) Spec {
	v := s
	if name != "" {
		v.Name = name
	}
	if coresPerSocket > 0 {
		v.Topology.CoresPerSocket = coresPerSocket
	}
	if freqScale > 0 && freqScale != 1 {
		scale := func(f units.Hertz) units.Hertz {
			return units.Hertz(float64(f) * freqScale)
		}
		v.Freq.Min = scale(v.Freq.Min)
		v.Freq.Base = scale(v.Freq.Base)
		v.Freq.Turbo = scale(v.Freq.Turbo)
		v.Freq.TurboDerate = scale(v.Freq.TurboDerate)
		v.Power.BaseFreq = scale(v.Power.BaseFreq)
		pts := s.Power.Residual.Points()
		for i := range pts {
			pts[i].Freq = scale(pts[i].Freq)
		}
		v.Power.Residual = NewResidualCurve(pts...)
	}
	return v
}

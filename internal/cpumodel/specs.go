package cpumodel

import "powerdiv/internal/units"

// Spec bundles the full physical description of a machine: topology,
// frequency behaviour, and the calibrated power model.
type Spec struct {
	Name     string
	Topology Topology
	Freq     FreqDomain
	Power    PowerModel
}

// Validate checks the whole spec.
func (s Spec) Validate() error {
	if err := s.Topology.Validate(); err != nil {
		return err
	}
	return s.Freq.Validate()
}

// SmallIntel returns the calibration of the paper's SMALL INTEL machine
// (Table II): a 6-core / 12-thread Intel Xeon W-2133 workstation.
//
// Calibration targets, from the paper:
//   - residual consumption 28 W at 3.6 GHz, 17 W when frequency-capped to
//     2 GHz, 15 W at the 1.2 GHz nominal frequency (§III-B, §IV-B);
//   - per-core active cost up to ≈7 W for the hottest stress function
//     (Fig 1's linear factor), with the 12 stress functions spread across
//     the curve's width (≈8 W at full load);
//   - machine total around 74 W when running uncapped stress on all
//     physical cores (§IV-B).
func SmallIntel() Spec {
	return Spec{
		Name: "SMALL INTEL",
		Topology: Topology{
			Sockets:        1,
			CoresPerSocket: 6,
			ThreadsPerCore: 2,
		},
		Freq: FreqDomain{
			Min:         1.2 * units.GHz,
			Base:        3.6 * units.GHz,
			Turbo:       3.9 * units.GHz,
			TurboDerate: 0.05 * units.GHz,
		},
		Power: PowerModel{
			Idle: 8,
			Residual: NewResidualCurve(
				FreqPoint{1.2 * units.GHz, 15},
				FreqPoint{2.0 * units.GHz, 17},
				FreqPoint{2.4 * units.GHz, 19.5},
				FreqPoint{3.6 * units.GHz, 28},
				FreqPoint{3.9 * units.GHz, 31},
			),
			FreqExponent:  2,
			SMTEfficiency: 0.3,
			BaseFreq:      3.6 * units.GHz,
		},
	}
}

// Dahu returns the calibration of the paper's DAHU machine (Table II): a
// dual-socket Intel Xeon Gold 6130 node (2×16 cores, 64 threads) from the
// Grid'5000 Grenoble cluster.
//
// Calibration targets, from the paper:
//   - an idle→one-core gap of about 81 W (Fig 1), dominated by residual
//     consumption;
//   - a power band of roughly 25 W width at full load across the stress
//     functions, more than 10 % of the machine's maximum;
//   - the QUEENS / FLOAT64 pair near the band edges, giving the 17.4 %
//     maximum ratio error reported in §IV-A.
func Dahu() Spec {
	return Spec{
		Name: "DAHU",
		Topology: Topology{
			Sockets:        2,
			CoresPerSocket: 16,
			ThreadsPerCore: 2,
		},
		Freq: FreqDomain{
			Min:         1.0 * units.GHz,
			Base:        2.1 * units.GHz,
			Turbo:       3.7 * units.GHz,
			TurboDerate: 0.03 * units.GHz,
		},
		Power: PowerModel{
			Idle: 58,
			Residual: NewResidualCurve(
				FreqPoint{1.0 * units.GHz, 36},
				FreqPoint{2.1 * units.GHz, 79},
				FreqPoint{3.0 * units.GHz, 102},
				FreqPoint{3.7 * units.GHz, 118},
			),
			FreqExponent:  2,
			SMTEfficiency: 0.3,
			BaseFreq:      2.1 * units.GHz,
		},
	}
}

// Specs returns all built-in machine calibrations.
func Specs() []Spec { return []Spec{SmallIntel(), Dahu()} }

// SpecByName returns the built-in calibration with the given name.
func SpecByName(name string) (Spec, bool) {
	for _, s := range Specs() {
		if s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}

package cpumodel

import (
	"math"
	"testing"
	"testing/quick"

	"powerdiv/internal/units"
)

func TestTopology(t *testing.T) {
	small := SmallIntel().Topology
	if got := small.PhysicalCores(); got != 6 {
		t.Errorf("SMALL INTEL physical cores = %d, want 6", got)
	}
	if got := small.LogicalCPUs(); got != 12 {
		t.Errorf("SMALL INTEL logical CPUs = %d, want 12", got)
	}
	dahu := Dahu().Topology
	if got := dahu.PhysicalCores(); got != 32 {
		t.Errorf("DAHU physical cores = %d, want 32", got)
	}
	if got := dahu.LogicalCPUs(); got != 64 {
		t.Errorf("DAHU logical CPUs = %d, want 64", got)
	}
}

func TestTopologyValidate(t *testing.T) {
	bad := []Topology{
		{Sockets: 0, CoresPerSocket: 4, ThreadsPerCore: 1},
		{Sockets: 1, CoresPerSocket: 0, ThreadsPerCore: 1},
		{Sockets: 1, CoresPerSocket: 4, ThreadsPerCore: 3},
		{Sockets: -1, CoresPerSocket: 4, ThreadsPerCore: 2},
	}
	for _, tp := range bad {
		if err := tp.Validate(); err == nil {
			t.Errorf("Validate(%+v) = nil, want error", tp)
		}
	}
	good := Topology{Sockets: 2, CoresPerSocket: 16, ThreadsPerCore: 2}
	if err := good.Validate(); err != nil {
		t.Errorf("Validate(%+v) = %v", good, err)
	}
}

func TestSpecValidate(t *testing.T) {
	for _, spec := range Specs() {
		if err := spec.Validate(); err != nil {
			t.Errorf("spec %s invalid: %v", spec.Name, err)
		}
	}
	bad := SmallIntel()
	bad.Freq.Base = 0.5 * units.GHz // below Min
	if err := bad.Validate(); err == nil {
		t.Error("spec with base below min should be invalid")
	}
}

func TestSpecByName(t *testing.T) {
	if _, ok := SpecByName("SMALL INTEL"); !ok {
		t.Error("SMALL INTEL not found")
	}
	if _, ok := SpecByName("DAHU"); !ok {
		t.Error("DAHU not found")
	}
	if _, ok := SpecByName("NONEXISTENT"); ok {
		t.Error("NONEXISTENT should not be found")
	}
}

func TestActiveFreqNoTurbo(t *testing.T) {
	f := SmallIntel().Freq
	for n := 1; n <= 6; n++ {
		if got := f.ActiveFreq(n, false, 0); got != 3.6*units.GHz {
			t.Errorf("ActiveFreq(%d, no turbo) = %v, want 3.6 GHz", n, got)
		}
	}
	if got := f.ActiveFreq(0, false, 0); got != f.Min {
		t.Errorf("ActiveFreq(0) = %v, want Min %v", got, f.Min)
	}
}

func TestActiveFreqTurboDerates(t *testing.T) {
	f := SmallIntel().Freq
	one := f.ActiveFreq(1, true, 0)
	if one != 3.9*units.GHz {
		t.Errorf("single-core turbo = %v, want 3.9 GHz", one)
	}
	six := f.ActiveFreq(6, true, 0)
	want := 3.9*units.GHz - 5*0.05*units.GHz
	if math.Abs(float64(six-want)) > 1 {
		t.Errorf("six-core turbo = %v, want %v", six, want)
	}
	if six >= one {
		t.Error("turbo frequency should derate with active cores")
	}
	// Derating never goes below base.
	if got := f.ActiveFreq(1000, true, 0); got != f.Base {
		t.Errorf("heavily derated turbo = %v, want base %v", got, f.Base)
	}
}

func TestActiveFreqCap(t *testing.T) {
	f := SmallIntel().Freq
	if got := f.ActiveFreq(1, true, 2.0*units.GHz); got != 2.0*units.GHz {
		t.Errorf("capped freq = %v, want 2 GHz", got)
	}
	// Cap below Min clamps to Min.
	if got := f.ActiveFreq(1, false, 0.5*units.GHz); got != f.Min {
		t.Errorf("cap below min = %v, want %v", got, f.Min)
	}
	// Cap above current frequency is a no-op.
	if got := f.ActiveFreq(1, false, 10*units.GHz); got != f.Base {
		t.Errorf("loose cap = %v, want base", got)
	}
}

func TestResidualCurvePaperPoints(t *testing.T) {
	r := SmallIntel().Power.Residual
	tests := []struct {
		f    units.Hertz
		want units.Watts
	}{
		{1.2 * units.GHz, 15}, // nominal frequency (§III-B)
		{2.0 * units.GHz, 17}, // frequency capped to 2 GHz (§III-B)
		{3.6 * units.GHz, 28}, // base frequency (§IV-B)
	}
	for _, tt := range tests {
		if got := r.At(tt.f); math.Abs(float64(got-tt.want)) > 1e-9 {
			t.Errorf("R(%v) = %v, want %v", tt.f, got, tt.want)
		}
	}
}

func TestResidualCurveInterpolationAndClamp(t *testing.T) {
	r := NewResidualCurve(
		FreqPoint{1 * units.GHz, 10},
		FreqPoint{3 * units.GHz, 30},
	)
	if got := r.At(2 * units.GHz); math.Abs(float64(got-20)) > 1e-9 {
		t.Errorf("midpoint = %v, want 20", got)
	}
	if got := r.At(0.5 * units.GHz); got != 10 {
		t.Errorf("below range = %v, want 10", got)
	}
	if got := r.At(5 * units.GHz); got != 30 {
		t.Errorf("above range = %v, want 30", got)
	}
}

func TestResidualCurveMonotoneForCalibrations(t *testing.T) {
	for _, spec := range Specs() {
		pts := spec.Power.Residual.Points()
		for i := 1; i < len(pts); i++ {
			if pts[i].R < pts[i-1].R {
				t.Errorf("%s residual curve not monotone at %v", spec.Name, pts[i].Freq)
			}
		}
	}
}

func TestNewResidualCurvePanicsEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewResidualCurve() did not panic")
		}
	}()
	NewResidualCurve()
}

func TestPowerIdleOnly(t *testing.T) {
	m := SmallIntel().Power
	bd := m.Power(make([]CoreLoad, 12))
	if bd.Total() != m.Idle {
		t.Errorf("idle machine total = %v, want %v", bd.Total(), m.Idle)
	}
	if bd.Residual != 0 || bd.Active != 0 {
		t.Errorf("idle machine residual/active = %v/%v, want 0/0", bd.Residual, bd.Active)
	}
}

func TestPowerSingleCoreIncursFullResidual(t *testing.T) {
	m := SmallIntel().Power
	loads := []CoreLoad{{Util: 1, CostAtBase: 7, Freq: 3.6 * units.GHz}}
	bd := m.Power(loads)
	if math.Abs(float64(bd.Residual-28)) > 1e-9 {
		t.Errorf("residual = %v, want 28", bd.Residual)
	}
	if math.Abs(float64(bd.Active-7)) > 1e-9 {
		t.Errorf("active = %v, want 7", bd.Active)
	}
	if math.Abs(float64(bd.Total()-(8+28+7))) > 1e-9 {
		t.Errorf("total = %v, want 43", bd.Total())
	}
}

func TestPowerResidualNotCumulative(t *testing.T) {
	m := SmallIntel().Power
	one := m.Power([]CoreLoad{{Util: 1, CostAtBase: 5, Freq: 3.6 * units.GHz}})
	six := m.Power([]CoreLoad{
		{Util: 1, CostAtBase: 5, Freq: 3.6 * units.GHz},
		{Util: 1, CostAtBase: 5, Freq: 3.6 * units.GHz},
		{Util: 1, CostAtBase: 5, Freq: 3.6 * units.GHz},
		{Util: 1, CostAtBase: 5, Freq: 3.6 * units.GHz},
		{Util: 1, CostAtBase: 5, Freq: 3.6 * units.GHz},
		{Util: 1, CostAtBase: 5, Freq: 3.6 * units.GHz},
	})
	if one.Residual != six.Residual {
		t.Errorf("residual grew with cores: %v vs %v", one.Residual, six.Residual)
	}
	if math.Abs(float64(six.Active-6*one.Active)) > 1e-9 {
		t.Errorf("active not linear: %v vs 6×%v", six.Active, one.Active)
	}
}

func TestPowerDutyCycledResidual(t *testing.T) {
	// §IV-B: a stress capped to 50 % CPU time produced about half the
	// residual of an uncapped one (15 W vs 28 W).
	m := SmallIntel().Power
	capped := m.Power([]CoreLoad{{Util: 0.5, CostAtBase: 6, Freq: 3.6 * units.GHz}})
	if math.Abs(float64(capped.Residual-14)) > 1e-9 {
		t.Errorf("capped residual = %v, want 14", capped.Residual)
	}
	// Active power also halves with the duty factor.
	if math.Abs(float64(capped.Active-3)) > 1e-9 {
		t.Errorf("capped active = %v, want 3", capped.Active)
	}
}

func TestPowerCappedPlusUncappedResidualDominates(t *testing.T) {
	// §IV-B: "the same residual consumption was observed when capped and
	// uncapped applications were running in parallel" — the uncapped core's
	// full-speed residual wins.
	m := SmallIntel().Power
	mixed := m.Power([]CoreLoad{
		{Util: 0.5, CostAtBase: 6, Freq: 3.6 * units.GHz},
		{Util: 1, CostAtBase: 6, Freq: 3.6 * units.GHz},
	})
	if math.Abs(float64(mixed.Residual-28)) > 1e-9 {
		t.Errorf("mixed residual = %v, want 28", mixed.Residual)
	}
}

func TestPowerFrequencyScaling(t *testing.T) {
	m := SmallIntel().Power
	base := m.Power([]CoreLoad{{Util: 1, CostAtBase: 6, Freq: 3.6 * units.GHz}})
	slow := m.Power([]CoreLoad{{Util: 1, CostAtBase: 6, Freq: 1.8 * units.GHz}})
	// Half frequency, exponent 2 => quarter active power.
	if math.Abs(float64(slow.Active)-float64(base.Active)/4) > 1e-9 {
		t.Errorf("active at half freq = %v, want %v", slow.Active, float64(base.Active)/4)
	}
	if slow.Residual >= base.Residual {
		t.Errorf("residual should drop with frequency: %v vs %v", slow.Residual, base.Residual)
	}
}

func TestPowerSMTSiblingDiscount(t *testing.T) {
	m := SmallIntel().Power
	full := m.Power([]CoreLoad{{Util: 1, CostAtBase: 6, Freq: 3.6 * units.GHz}})
	sib := m.Power([]CoreLoad{{Util: 1, CostAtBase: 6, Freq: 3.6 * units.GHz, SMTSibling: true}})
	want := float64(full.Active) * m.SMTEfficiency
	if math.Abs(float64(sib.Active)-want) > 1e-9 {
		t.Errorf("sibling active = %v, want %v", sib.Active, want)
	}
}

func TestPowerUtilClamped(t *testing.T) {
	m := SmallIntel().Power
	over := m.Power([]CoreLoad{{Util: 2.5, CostAtBase: 6, Freq: 3.6 * units.GHz}})
	one := m.Power([]CoreLoad{{Util: 1, CostAtBase: 6, Freq: 3.6 * units.GHz}})
	if over.Total() != one.Total() {
		t.Errorf("util > 1 not clamped: %v vs %v", over.Total(), one.Total())
	}
}

func TestPowerZeroFreqUsesBase(t *testing.T) {
	m := SmallIntel().Power
	implicit := m.Power([]CoreLoad{{Util: 1, CostAtBase: 6}})
	explicit := m.Power([]CoreLoad{{Util: 1, CostAtBase: 6, Freq: m.BaseFreq}})
	if implicit.Total() != explicit.Total() {
		t.Errorf("zero freq = %v, want base-freq result %v", implicit.Total(), explicit.Total())
	}
}

func TestPowerBreakdownPerCoreAligned(t *testing.T) {
	m := SmallIntel().Power
	loads := []CoreLoad{
		{Util: 1, CostAtBase: 4, Freq: 3.6 * units.GHz},
		{},
		{Util: 1, CostAtBase: 7, Freq: 3.6 * units.GHz},
	}
	bd := m.Power(loads)
	if len(bd.PerCore) != 3 {
		t.Fatalf("PerCore len = %d, want 3", len(bd.PerCore))
	}
	if bd.PerCore[1] != 0 {
		t.Errorf("idle core power = %v, want 0", bd.PerCore[1])
	}
	if math.Abs(float64(bd.PerCore[0]+bd.PerCore[2]-bd.Active)) > 1e-9 {
		t.Error("PerCore does not sum to Active")
	}
}

// Property: total power is monotone in utilization.
func TestPowerMonotoneInUtil(t *testing.T) {
	m := SmallIntel().Power
	f := func(u1, u2 float64) bool {
		u1 = math.Abs(math.Mod(u1, 1))
		u2 = math.Abs(math.Mod(u2, 1))
		if u1 > u2 {
			u1, u2 = u2, u1
		}
		p1 := m.Power([]CoreLoad{{Util: u1, CostAtBase: 6, Freq: 3.6 * units.GHz}}).Total()
		p2 := m.Power([]CoreLoad{{Util: u2, CostAtBase: 6, Freq: 3.6 * units.GHz}}).Total()
		return p1 <= p2+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: the machine total always decomposes exactly.
func TestPowerDecomposition(t *testing.T) {
	m := Dahu().Power
	f := func(utils []float64) bool {
		loads := make([]CoreLoad, len(utils))
		for i, u := range utils {
			loads[i] = CoreLoad{Util: math.Abs(math.Mod(u, 1)), CostAtBase: 2, Freq: 2.1 * units.GHz}
		}
		bd := m.Power(loads)
		var sum units.Watts
		for _, p := range bd.PerCore {
			sum += p
		}
		return math.Abs(float64(sum-bd.Active)) < 1e-9 &&
			math.Abs(float64(bd.Total()-(bd.Idle+bd.Residual+bd.Active))) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFigure1ShapeNoHTTB(t *testing.T) {
	// Without HT/turbo the curve must show: a large idle→1-core jump
	// (residual ≫ per-core cost), then near-linear growth.
	spec := SmallIntel()
	m := spec.Power
	freq := spec.Freq.ActiveFreq(1, false, 0)
	totals := make([]units.Watts, spec.Topology.PhysicalCores()+1)
	totals[0] = m.Power(nil).Total()
	for n := 1; n <= spec.Topology.PhysicalCores(); n++ {
		loads := make([]CoreLoad, n)
		for i := range loads {
			loads[i] = CoreLoad{Util: 1, CostAtBase: 7, Freq: freq}
		}
		totals[n] = m.Power(loads).Total()
	}
	jump := totals[1] - totals[0]
	slope := totals[2] - totals[1]
	if jump < 3*slope {
		t.Errorf("idle→1core jump %v not ≫ per-core slope %v", jump, slope)
	}
	// Linearity of the tail: all increments equal.
	for n := 2; n <= spec.Topology.PhysicalCores(); n++ {
		inc := totals[n] - totals[n-1]
		if math.Abs(float64(inc-slope)) > 1e-9 {
			t.Errorf("increment at %d cores = %v, want %v (linear)", n, inc, slope)
		}
	}
}

func TestFigure3ShapeHTTB(t *testing.T) {
	// With HT/turbo the curve must be concave: increments shrink as load
	// grows (turbo derating over physical cores, SMT discount beyond them).
	spec := SmallIntel()
	m := spec.Power
	phys := spec.Topology.PhysicalCores()
	logical := spec.Topology.LogicalCPUs()
	totals := make([]units.Watts, logical+1)
	totals[0] = m.Power(nil).Total()
	for n := 1; n <= logical; n++ {
		active := n
		if active > phys {
			active = phys
		}
		freq := spec.Freq.ActiveFreq(active, true, 0)
		loads := make([]CoreLoad, n)
		for i := range loads {
			loads[i] = CoreLoad{Util: 1, CostAtBase: 7, Freq: freq, SMTSibling: i >= phys}
		}
		totals[n] = m.Power(loads).Total()
	}
	firstInc := totals[2] - totals[1]
	lastInc := totals[logical] - totals[logical-1]
	if lastInc >= firstInc {
		t.Errorf("curve not concave: first increment %v, last %v", firstInc, lastInc)
	}
	// SMT region increments must be well below physical-core increments.
	if float64(lastInc) > 0.5*float64(firstInc) {
		t.Errorf("SMT increment %v not ≪ physical increment %v", lastInc, firstInc)
	}
}

func TestDahuResidualGap(t *testing.T) {
	// Fig 1: on DAHU the idle→1-core gap is about 81 W.
	spec := Dahu()
	freq := spec.Freq.ActiveFreq(1, false, 0)
	idle := spec.Power.Power(nil).Total()
	one := spec.Power.Power([]CoreLoad{{Util: 1, CostAtBase: 1.9, Freq: freq}}).Total()
	gap := float64(one - idle)
	if gap < 70 || gap > 95 {
		t.Errorf("DAHU idle→1core gap = %.1f W, want ≈81 W", gap)
	}
}

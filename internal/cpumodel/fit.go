package cpumodel

import (
	"fmt"
	"math"
	"sort"

	"powerdiv/internal/units"
)

// CurveSample is one measured point of a calibration sweep: the mean
// machine power with a given number of fully busy cores, while busy cores
// ran at the given frequency (vary it with cpufreq caps, as §III-B does).
// A Cores == 0 sample is the idle measurement.
type CurveSample struct {
	Cores int
	Freq  units.Hertz
	Power units.Watts
}

// FitResult is the outcome of FitPowerModel.
type FitResult struct {
	// Model is the fitted power model (Idle, Residual curve,
	// FreqExponent; SMTEfficiency keeps the supplied default, since
	// fitting it needs SMT-loaded samples).
	Model PowerModel
	// ProbeCostAtBase is the fitted per-core active cost of the probe
	// workload used for the sweep, at base frequency.
	ProbeCostAtBase units.Watts
	// Residuals are the per-frequency fit residuals (RMS of the linear
	// fit), a quality indicator.
	Residuals map[units.Hertz]float64
}

// FitPowerModel calibrates a PowerModel from load-curve measurements —
// the reverse of what the simulator computes, and the procedure the paper
// implicitly performs in §III-B: measure power at 0..N busy cores for a
// few frequency caps, fit the linear tail of each curve, and read off
//
//	intercept(f) = Idle + R(f)      (the idle→one-core jump)
//	slope(f)     = cost × (f/f_base)^exponent
//
// Requirements: exactly one idle sample (Cores == 0), and at least one
// frequency with two or more loaded samples. The highest frequency present
// is taken as the base frequency. The frequency exponent is fitted from
// the slopes when multiple frequencies are present, else defaults to 2.
func FitPowerModel(samples []CurveSample, smtEfficiency float64) (FitResult, error) {
	res := FitResult{Residuals: map[units.Hertz]float64{}}
	var idle units.Watts
	idleSeen := false
	byFreq := map[units.Hertz][]CurveSample{}
	for _, s := range samples {
		if s.Cores < 0 || s.Power < 0 {
			return res, fmt.Errorf("cpumodel: invalid sample %+v", s)
		}
		if s.Cores == 0 {
			if idleSeen && s.Power != idle {
				return res, fmt.Errorf("cpumodel: conflicting idle samples (%v vs %v)", idle, s.Power)
			}
			idle = s.Power
			idleSeen = true
			continue
		}
		if s.Freq <= 0 {
			return res, fmt.Errorf("cpumodel: loaded sample without frequency: %+v", s)
		}
		byFreq[s.Freq] = append(byFreq[s.Freq], s)
	}
	if !idleSeen {
		return res, fmt.Errorf("cpumodel: no idle (Cores == 0) sample")
	}
	if len(byFreq) == 0 {
		return res, fmt.Errorf("cpumodel: no loaded samples")
	}

	freqs := make([]units.Hertz, 0, len(byFreq))
	for f := range byFreq {
		freqs = append(freqs, f)
	}
	sort.Slice(freqs, func(i, j int) bool { return freqs[i] < freqs[j] })
	base := freqs[len(freqs)-1]

	type fit struct {
		slope, intercept float64
	}
	fits := map[units.Hertz]fit{}
	var points []FreqPoint
	for _, f := range freqs {
		group := byFreq[f]
		if len(group) < 2 {
			return res, fmt.Errorf("cpumodel: need ≥2 loaded samples at %v, have %d", f, len(group))
		}
		slope, intercept, rms, err := linearFit(group)
		if err != nil {
			return res, fmt.Errorf("cpumodel: at %v: %w", f, err)
		}
		if slope < 0 {
			return res, fmt.Errorf("cpumodel: negative per-core slope %.3f at %v", slope, f)
		}
		r := intercept - float64(idle)
		if r < 0 {
			r = 0
		}
		fits[f] = fit{slope: slope, intercept: intercept}
		points = append(points, FreqPoint{Freq: f, R: units.Watts(r)})
		res.Residuals[f] = rms
	}

	// Frequency exponent from slope ratios (least-squares in log space).
	exponent := 2.0
	if len(freqs) > 1 {
		var sx, sy, sxx, sxy float64
		var n int
		baseSlope := fits[base].slope
		if baseSlope <= 0 {
			return res, fmt.Errorf("cpumodel: zero slope at base frequency")
		}
		for _, f := range freqs {
			if f == base {
				continue
			}
			x := math.Log(float64(f) / float64(base))
			y := math.Log(fits[f].slope / baseSlope)
			sx += x
			sy += y
			sxx += x * x
			sxy += x * y
			n++
		}
		den := float64(n)*sxx - sx*sx
		if den != 0 {
			exponent = (float64(n)*sxy - sx*sy) / den
		}
	}

	res.Model = PowerModel{
		Idle:          idle,
		Residual:      NewResidualCurve(points...),
		FreqExponent:  exponent,
		SMTEfficiency: smtEfficiency,
		BaseFreq:      base,
	}
	res.ProbeCostAtBase = units.Watts(fits[base].slope)
	return res, nil
}

// linearFit runs an ordinary least squares fit of power against core count
// and returns slope, intercept and the RMS residual.
func linearFit(group []CurveSample) (slope, intercept, rms float64, err error) {
	var sx, sy, sxx, sxy float64
	for _, s := range group {
		x := float64(s.Cores)
		y := float64(s.Power)
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
	}
	n := float64(len(group))
	den := n*sxx - sx*sx
	if den == 0 {
		return 0, 0, 0, fmt.Errorf("degenerate fit (all samples at the same core count)")
	}
	slope = (n*sxy - sx*sy) / den
	intercept = (sy - slope*sx) / n
	var ss float64
	for _, s := range group {
		d := float64(s.Power) - (intercept + slope*float64(s.Cores))
		ss += d * d
	}
	rms = math.Sqrt(ss / n)
	return slope, intercept, rms, nil
}

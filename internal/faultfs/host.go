package faultfs

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
)

// HostZoneSpec configures one synthetic RAPL zone.
type HostZoneSpec struct {
	// MaxRangeUJ is the counter's wraparound range in µJ. Storm tests use
	// small ranges so wraps occur every few seconds of simulated time.
	MaxRangeUJ uint64
	// StartUJ is the counter's initial value (real counters start at an
	// arbitrary point in their range; start near MaxRangeUJ to force an
	// early wrap).
	StartUJ uint64
}

// Host is a synthetic Linux host: a powercap sysfs tree plus a proc tree
// that the test driver advances. Energy counters wrap with real modulo
// semantics, and the host keeps per-zone ground-truth delivered energy —
// the reference a storm test holds the meter's attribution against.
//
// Host is not safe for concurrent use; drive it from one goroutine.
type Host struct {
	// CapRoot is the powercap root to hand to the meter.
	CapRoot string
	// ProcRoot is the proc root to hand to the meter.
	ProcRoot string

	zones []*hostZone
	procs map[int]uint64
}

type hostZone struct {
	dir         string
	maxRange    uint64
	startUJ     uint64
	deliveredUJ float64
	wraps       int
	removed     bool
}

// NewHost builds the powercap and proc trees under the given (existing)
// directories. Zone i is named package-<i> in directory intel-rapl:<i>.
func NewHost(capRoot, procRoot string, zones []HostZoneSpec) (*Host, error) {
	h := &Host{CapRoot: capRoot, ProcRoot: procRoot, procs: map[int]uint64{}}
	for i, spec := range zones {
		if spec.MaxRangeUJ == 0 {
			return nil, fmt.Errorf("faultfs: zone %d: zero MaxRangeUJ", i)
		}
		dir := filepath.Join(capRoot, fmt.Sprintf("intel-rapl:%d", i))
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("faultfs: %w", err)
		}
		z := &hostZone{dir: dir, maxRange: spec.MaxRangeUJ, startUJ: spec.StartUJ % spec.MaxRangeUJ}
		files := map[string]string{
			"name":                fmt.Sprintf("package-%d\n", i),
			"max_energy_range_uj": strconv.FormatUint(z.maxRange, 10) + "\n",
		}
		for name, content := range files {
			if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
				return nil, fmt.Errorf("faultfs: %w", err)
			}
		}
		h.zones = append(h.zones, z)
		if err := h.writeEnergy(z); err != nil {
			return nil, err
		}
	}
	return h, nil
}

// writeEnergy materialises the zone's wrapped counter value.
func (h *Host) writeEnergy(z *hostZone) error {
	uj := (z.startUJ + uint64(z.deliveredUJ)) % z.maxRange
	path := filepath.Join(z.dir, "energy_uj")
	if err := os.WriteFile(path, []byte(strconv.FormatUint(uj, 10)+"\n"), 0o644); err != nil {
		return fmt.Errorf("faultfs: %w", err)
	}
	return nil
}

// AddEnergy delivers joules to the zone: the ground-truth tally grows and
// the counter file advances (wrapping as real hardware does). Delivering to
// a removed zone is a no-op — an unplugged package draws nothing.
func (h *Host) AddEnergy(zone int, joules float64) error {
	z := h.zones[zone]
	if z.removed {
		return nil
	}
	before := (z.startUJ + uint64(z.deliveredUJ)) % z.maxRange
	z.deliveredUJ += joules * 1e6
	after := (z.startUJ + uint64(z.deliveredUJ)) % z.maxRange
	if after < before {
		z.wraps++
	}
	return h.writeEnergy(z)
}

// CorruptEnergy rewrites the zone's counter to an arbitrary raw value
// without touching the ground-truth tally — the "counter restarted from an
// arbitrary point" anomaly a meter must not book as a huge wrap delta.
func (h *Host) CorruptEnergy(zone int, uj uint64) error {
	z := h.zones[zone]
	z.startUJ = uj % z.maxRange
	z.deliveredUJ = 0
	return h.writeEnergy(z)
}

// RemoveZone deletes the zone's sysfs directory, as package hotplug or
// permission loss would. Further AddEnergy calls for it are no-ops.
func (h *Host) RemoveZone(zone int) error {
	z := h.zones[zone]
	z.removed = true
	if err := os.RemoveAll(z.dir); err != nil {
		return fmt.Errorf("faultfs: %w", err)
	}
	return nil
}

// DeliveredJoules returns the ground-truth energy delivered to the zone.
func (h *Host) DeliveredJoules(zone int) float64 { return h.zones[zone].deliveredUJ * 1e-6 }

// Wraps returns how many times the zone's counter has wrapped.
func (h *Host) Wraps(zone int) int { return h.zones[zone].wraps }

// ZoneDir returns the zone's sysfs directory (for targeting faults).
func (h *Host) ZoneDir(zone int) string { return h.zones[zone].dir }

// SetProcJiffies writes /<pid>/stat with the given cumulative utime.
func (h *Host) SetProcJiffies(pid int, jiffies uint64) error {
	h.procs[pid] = jiffies
	dir := filepath.Join(h.ProcRoot, strconv.Itoa(pid))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("faultfs: %w", err)
	}
	line := strconv.Itoa(pid) + " (worker) R 1 1 1 0 -1 0 0 0 0 0 " +
		strconv.FormatUint(jiffies, 10) + " 0 0 0 20 0 1 0 0 0 0\n"
	if err := os.WriteFile(filepath.Join(dir, "stat"), []byte(line), 0o644); err != nil {
		return fmt.Errorf("faultfs: %w", err)
	}
	return nil
}

// AddProcJiffies advances a process's cumulative CPU time.
func (h *Host) AddProcJiffies(pid int, delta uint64) error {
	return h.SetProcJiffies(pid, h.procs[pid]+delta)
}

// ProcJiffies returns the process's current cumulative utime.
func (h *Host) ProcJiffies(pid int) uint64 { return h.procs[pid] }

// RemoveProc deletes the process's proc directory (process exit). A later
// SetProcJiffies with a fresh count models PID reuse.
func (h *Host) RemoveProc(pid int) error {
	delete(h.procs, pid)
	if err := os.RemoveAll(filepath.Join(h.ProcRoot, strconv.Itoa(pid))); err != nil {
		return fmt.Errorf("faultfs: %w", err)
	}
	return nil
}

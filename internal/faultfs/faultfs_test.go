package faultfs

import (
	"errors"
	iofs "io/fs"
	"os"
	"path/filepath"
	"strconv"
	"testing"
)

func writeFile(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestInjectorDeterministic(t *testing.T) {
	path := writeFile(t, t.TempDir(), "energy_uj", "123\n")
	pattern := func() []bool {
		in := NewInjector(7, 0.5)
		var out []bool
		for i := 0; i < 64; i++ {
			_, err := in.ReadFile(path)
			out = append(out, err != nil)
		}
		return out
	}
	a, b := pattern(), pattern()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at read %d", i)
		}
	}
	errs := 0
	for _, failed := range a {
		if failed {
			errs++
		}
	}
	if errs == 0 || errs == len(a) {
		t.Errorf("errs = %d of %d, want a mixture at rate 0.5", errs, len(a))
	}
}

func TestInjectorErrorIsTyped(t *testing.T) {
	path := writeFile(t, t.TempDir(), "energy_uj", "1\n")
	in := NewInjector(1, 1.0)
	_, err := in.ReadFile(path)
	if !errors.Is(err, ErrInjected) {
		t.Errorf("err = %v, want ErrInjected", err)
	}
	if errors.Is(err, iofs.ErrNotExist) {
		t.Error("transient error must not look like not-exist")
	}
}

func TestInjectorBurst(t *testing.T) {
	path := writeFile(t, t.TempDir(), "energy_uj", "1\n")
	in := NewInjector(3, 1.0)
	in.SetBurstLen(3)
	for i := 0; i < 3; i++ {
		if _, err := in.ReadFile(path); !errors.Is(err, ErrInjected) {
			t.Fatalf("read %d: err = %v, want ErrInjected", i, err)
		}
	}
	in.SetErrorRate(0)
	// The armed burst is exhausted; after it reads succeed again.
	if _, err := in.ReadFile(path); err != nil {
		t.Fatalf("post-burst read: %v", err)
	}
}

func TestInjectorFailNext(t *testing.T) {
	path := writeFile(t, t.TempDir(), "energy_uj", "1\n")
	in := NewInjector(1, 0)
	in.FailNext("energy_uj", 2)
	for i := 0; i < 2; i++ {
		if _, err := in.ReadFile(path); !errors.Is(err, ErrInjected) {
			t.Fatalf("read %d: err = %v, want ErrInjected", i, err)
		}
	}
	if _, err := in.ReadFile(path); err != nil {
		t.Fatalf("read after FailNext exhausted: %v", err)
	}
	st := in.Stats()
	if st.InjectedErrors != 2 || st.Reads != 3 {
		t.Errorf("stats = %+v", st)
	}
}

func TestInjectorVanishAndRestore(t *testing.T) {
	dir := t.TempDir()
	path := writeFile(t, dir, "energy_uj", "1\n")
	in := NewInjector(1, 0)
	in.Vanish(dir)
	if _, err := in.ReadFile(path); !errors.Is(err, iofs.ErrNotExist) {
		t.Fatalf("vanished read err = %v, want fs.ErrNotExist", err)
	}
	in.Restore(dir)
	if _, err := in.ReadFile(path); err != nil {
		t.Fatalf("restored read: %v", err)
	}
	if in.Stats().VanishedReads != 1 {
		t.Errorf("VanishedReads = %d, want 1", in.Stats().VanishedReads)
	}
}

func TestInjectorOnly(t *testing.T) {
	dir := t.TempDir()
	target := writeFile(t, dir, "energy_uj", "1\n")
	other := writeFile(t, dir, "name", "package-0\n")
	in := NewInjector(1, 1.0)
	in.Only("energy_uj")
	if _, err := in.ReadFile(other); err != nil {
		t.Errorf("read outside Only scope failed: %v", err)
	}
	if _, err := in.ReadFile(target); !errors.Is(err, ErrInjected) {
		t.Errorf("read inside Only scope err = %v, want ErrInjected", err)
	}
}

func TestHostCountersWrap(t *testing.T) {
	h, err := NewHost(t.TempDir(), t.TempDir(), []HostZoneSpec{
		{MaxRangeUJ: 10_000_000, StartUJ: 9_000_000}, // 1 J before wrap
	})
	if err != nil {
		t.Fatal(err)
	}
	readCounter := func() uint64 {
		b, err := os.ReadFile(filepath.Join(h.ZoneDir(0), "energy_uj"))
		if err != nil {
			t.Fatal(err)
		}
		v, err := strconv.ParseUint(string(b[:len(b)-1]), 10, 64)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	if got := readCounter(); got != 9_000_000 {
		t.Fatalf("initial counter = %d", got)
	}
	if err := h.AddEnergy(0, 3); err != nil { // 3 J: wraps past 10 J range
		t.Fatal(err)
	}
	if got := readCounter(); got != 2_000_000 {
		t.Errorf("wrapped counter = %d, want 2000000", got)
	}
	if h.Wraps(0) != 1 {
		t.Errorf("wraps = %d, want 1", h.Wraps(0))
	}
	if got := h.DeliveredJoules(0); got != 3 {
		t.Errorf("ground truth = %v J, want 3 (wrap must not touch it)", got)
	}
}

func TestHostRemovedZoneDrawsNothing(t *testing.T) {
	h, err := NewHost(t.TempDir(), t.TempDir(), []HostZoneSpec{{MaxRangeUJ: 1_000_000_000}})
	if err != nil {
		t.Fatal(err)
	}
	h.AddEnergy(0, 5)
	if err := h.RemoveZone(0); err != nil {
		t.Fatal(err)
	}
	h.AddEnergy(0, 5)
	if got := h.DeliveredJoules(0); got != 5 {
		t.Errorf("delivered = %v J, want 5 (removed zone draws nothing)", got)
	}
	if _, err := os.Stat(h.ZoneDir(0)); !errors.Is(err, iofs.ErrNotExist) {
		t.Errorf("zone dir still present: %v", err)
	}
}

func TestHostProcLifecycle(t *testing.T) {
	h, err := NewHost(t.TempDir(), t.TempDir(), []HostZoneSpec{{MaxRangeUJ: 1_000_000_000}})
	if err != nil {
		t.Fatal(err)
	}
	if err := h.SetProcJiffies(10, 5); err != nil {
		t.Fatal(err)
	}
	if err := h.AddProcJiffies(10, 7); err != nil {
		t.Fatal(err)
	}
	if h.ProcJiffies(10) != 12 {
		t.Errorf("jiffies = %d, want 12", h.ProcJiffies(10))
	}
	statPath := filepath.Join(h.ProcRoot, "10", "stat")
	if _, err := os.Stat(statPath); err != nil {
		t.Fatal(err)
	}
	if err := h.RemoveProc(10); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(statPath); !errors.Is(err, iofs.ErrNotExist) {
		t.Errorf("stat still present after RemoveProc: %v", err)
	}
	if h.ProcJiffies(10) != 0 {
		t.Errorf("jiffies after removal = %d, want 0", h.ProcJiffies(10))
	}
}

// Package faultfs is a deterministic fault-injection harness for the live
// metering pipeline. It attacks the same seams the meter already uses for
// offline testing — the injectable powercap/proc roots and the injectable
// ReadFile hook in internal/rapl and internal/procfs — and produces the
// fault classes that dominate real long-running telemetry (WattScope,
// arXiv:2309.12612; Mazzola et al., arXiv:2401.01826):
//
//   - transient sysfs/procfs read errors, singly or in bursts that outlast
//     a retry policy;
//   - RAPL counter wraparound (the Host uses real modulo counters, so wraps
//     occur exactly as on hardware);
//   - vanishing zones and processes (package hotplug, permission loss, PID
//     churn), either injected at the read layer or by really deleting the
//     files;
//   - stalled clocks (the storm driver replays the same timestamp).
//
// Everything is driven by an explicit seed: a storm is reproducible
// bit-for-bit, which is what makes "the meter attributes ≥99 % of the
// ground-truth energy under this storm" a testable claim rather than a
// flaky one.
package faultfs

import (
	"errors"
	iofs "io/fs"
	"math/rand"
	"os"
	"strings"
	"sync"
)

// ErrInjected marks a transient read error produced by an Injector.
var ErrInjected = errors.New("faultfs: injected transient read error")

// Stats counts what an Injector has done.
type Stats struct {
	// Reads is the total number of reads routed through the injector.
	Reads int
	// InjectedErrors counts reads failed with ErrInjected.
	InjectedErrors int
	// VanishedReads counts reads failed with fs.ErrNotExist because the
	// path was vanished.
	VanishedReads int
}

// Injector wraps a read function and deterministically injects faults.
// It is safe for concurrent use.
type Injector struct {
	mu        sync.Mutex
	rng       *rand.Rand
	read      func(string) ([]byte, error)
	errorRate float64
	burstLen  int
	bursts    map[string]int
	vanished  []string
	only      []string
	stats     Stats
}

// NewInjector returns an injector over os.ReadFile with the given seed and
// per-read transient-error probability.
func NewInjector(seed int64, errorRate float64) *Injector {
	return &Injector{
		rng:       rand.New(rand.NewSource(seed)),
		read:      os.ReadFile,
		errorRate: errorRate,
		burstLen:  1,
		bursts:    map[string]int{},
	}
}

// SetErrorRate changes the per-read transient-error probability (storms
// script it over time: high during the storm, zero for a clean drain).
func (in *Injector) SetErrorRate(rate float64) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.errorRate = rate
}

// SetBurstLen makes every triggered error repeat for the next n reads of
// the same path. Bursts longer than the reader's retry budget are what
// force whole-tick drops and exercise the meter's carry-over path.
func (in *Injector) SetBurstLen(n int) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if n < 1 {
		n = 1
	}
	in.burstLen = n
}

// Only restricts fault injection to paths containing any of the given
// substrings (e.g. "energy_uj"); an empty call removes the restriction.
func (in *Injector) Only(substrings ...string) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.only = substrings
}

// Vanish makes every future read of a path with the given prefix fail with
// fs.ErrNotExist, as if the file tree disappeared (zone hot-unplug, revoked
// permissions, process exit).
func (in *Injector) Vanish(prefix string) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.vanished = append(in.vanished, prefix)
}

// Restore undoes Vanish for the given prefix.
func (in *Injector) Restore(prefix string) {
	in.mu.Lock()
	defer in.mu.Unlock()
	kept := in.vanished[:0]
	for _, p := range in.vanished {
		if p != prefix {
			kept = append(kept, p)
		}
	}
	in.vanished = kept
}

// FailNext forces the next n reads of paths containing the substring to
// fail with ErrInjected, regardless of the error rate. Deterministic
// scripts use it to place a fault exactly where the scenario needs one.
func (in *Injector) FailNext(substring string, n int) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.bursts[substring] += n
}

// Stats returns a snapshot of the injector's counters.
func (in *Injector) Stats() Stats {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.stats
}

// ReadFile reads the path, possibly injecting a fault. It matches the
// ReadFileFunc seams in internal/rapl and internal/procfs and the ReadFile
// hook in livemeter.Config.
func (in *Injector) ReadFile(path string) ([]byte, error) {
	in.mu.Lock()
	in.stats.Reads++
	for _, p := range in.vanished {
		if strings.HasPrefix(path, p) {
			in.stats.VanishedReads++
			in.mu.Unlock()
			return nil, &iofs.PathError{Op: "open", Path: path, Err: iofs.ErrNotExist}
		}
	}
	if in.eligible(path) {
		for sub, n := range in.bursts {
			if n > 0 && strings.Contains(path, sub) {
				in.bursts[sub] = n - 1
				in.stats.InjectedErrors++
				in.mu.Unlock()
				return nil, &iofs.PathError{Op: "read", Path: path, Err: ErrInjected}
			}
		}
		if in.errorRate > 0 && in.rng.Float64() < in.errorRate {
			if in.burstLen > 1 {
				in.bursts[path] += in.burstLen - 1
			}
			in.stats.InjectedErrors++
			in.mu.Unlock()
			return nil, &iofs.PathError{Op: "read", Path: path, Err: ErrInjected}
		}
	}
	read := in.read
	in.mu.Unlock()
	return read(path)
}

// eligible reports whether the path is subject to rate/burst injection.
// Caller holds the lock.
func (in *Injector) eligible(path string) bool {
	if len(in.only) == 0 {
		return true
	}
	for _, sub := range in.only {
		if strings.Contains(path, sub) {
			return true
		}
	}
	return false
}

package rapl

import (
	"math"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"
)

// FuzzPowercapLayout materialises fake /sys/class/powercap trees — one fixed
// package zone with fuzzed file contents, a sibling sub-zone that must always
// be skipped, and a fuzzed extra entry — and checks discovery against an
// independent model of its accept/reject rules. Accepted zones are then fed
// through a Counter, mirroring internal/cpumodel/fuzz_test.go: whatever
// discovery lets in must survive downstream use.
func FuzzPowercapLayout(f *testing.F) {
	f.Add("package-0", "262143328850", "1234567", uint64(2345678), "intel-rapl:1")
	f.Add("package-0\n", "262143328850\n", "0\n", uint64(0), "intel-rapl:2:0")
	f.Add("", "not-a-number", "99", uint64(1), "dmi")
	f.Add("psys", "0", "18446744073709551615", uint64(5), "intel-rapl")
	f.Add("package-0", "1000", "999", uint64(3), "intel-rapl::")
	f.Fuzz(func(t *testing.T, name, maxRange, energy string, energy2 uint64, extra string) {
		root := t.TempDir()
		fillZone := func(dir, name, maxRange, energy string) {
			for file, content := range map[string]string{
				"name":                name,
				"max_energy_range_uj": maxRange,
				"energy_uj":           energy,
			} {
				if err := os.WriteFile(filepath.Join(dir, file), []byte(content), 0o644); err != nil {
					t.Fatal(err)
				}
			}
		}
		writeZone := func(dir, name, maxRange, energy string) {
			if err := os.Mkdir(dir, 0o755); err != nil {
				t.Fatal(err)
			}
			fillZone(dir, name, maxRange, energy)
		}
		mainDir := filepath.Join(root, "intel-rapl:0")
		writeZone(mainDir, name, maxRange, energy)
		// Sub-zones are sibling entries in the flat powercap directory, not
		// children of the package dir. This one is valid, so if the skip rule
		// ever regressed it would be discovered, not rejected.
		writeZone(filepath.Join(root, "intel-rapl:0:0"), "core", "1000", "1")

		// The fuzzed extra entry probes the discovery filter. Names the OS
		// rejects (separators, NUL, too long) just don't get created.
		extraIsZone := false
		if extra != "intel-rapl:0" && extra != "intel-rapl:0:0" &&
			extra == filepath.Base(extra) && extra != "" && extra != "." && extra != ".." {
			dir := filepath.Join(root, extra)
			if err := os.Mkdir(dir, 0o755); err == nil {
				fillZone(dir, "package-9", "5000", "42")
				extraIsZone = strings.HasPrefix(extra, "intel-rapl:") && strings.Count(extra, ":") == 1
			}
		}

		_, maxErr := strconv.ParseUint(strings.TrimSpace(maxRange), 10, 64)
		_, energyErr := strconv.ParseUint(strings.TrimSpace(energy), 10, 64)
		mainValid := maxErr == nil && energyErr == nil

		zones, err := Discover(root)
		if !mainValid {
			if err == nil {
				t.Fatalf("discovery accepted zone with max=%q energy=%q", maxRange, energy)
			}
			return
		}
		if err != nil {
			t.Fatalf("discovery rejected a well-formed tree: %v", err)
		}
		want := 1
		if extraIsZone {
			want = 2
		}
		if len(zones) != want {
			dirs := make([]string, len(zones))
			for i, z := range zones {
				dirs[i] = z.Dir()
			}
			t.Fatalf("discovered %d zones %v, want %d (extra=%q)", len(zones), dirs, want, extra)
		}

		var main *PowercapZone
		for _, z := range zones {
			if z.Dir() == mainDir {
				main = z
			}
		}
		if main == nil {
			t.Fatalf("package zone %s not among discovered zones", mainDir)
		}
		if got := main.Name(); got != strings.TrimSpace(name) {
			t.Errorf("zone name %q, want trimmed %q", got, name)
		}

		// Downstream use: two readings through a Counter must yield a
		// finite, non-negative energy delta whatever the fuzzed values are.
		e1, err := main.ReadEnergy()
		if err != nil {
			t.Fatalf("accepted zone failed ReadEnergy: %v", err)
		}
		c := NewCounter(main.MaxEnergyRange())
		c.Rebase(Reading{At: time.Second, EnergyUJ: e1})
		if err := os.WriteFile(filepath.Join(mainDir, "energy_uj"), []byte(strconv.FormatUint(energy2, 10)), 0o644); err != nil {
			t.Fatal(err)
		}
		e2, err := main.ReadEnergy()
		if err != nil {
			t.Fatal(err)
		}
		j, dt, ok := c.EnergyDelta(Reading{At: 2 * time.Second, EnergyUJ: e2})
		if !ok || dt != time.Second {
			t.Fatalf("counter rejected an advancing reading (ok=%v dt=%v)", ok, dt)
		}
		if float64(j) < 0 || math.IsNaN(float64(j)) || math.IsInf(float64(j), 0) {
			t.Fatalf("energy delta %v J from counter %d→%d (range %d)", j, e1, e2, main.MaxEnergyRange())
		}
	})
}

package rapl

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// DefaultPowercapRoot is the Linux powercap sysfs mount point.
const DefaultPowercapRoot = "/sys/class/powercap"

// ErrNoRAPL is returned by Discover when the powercap tree exposes no
// intel-rapl zones (machine without RAPL, or an unsupported platform).
var ErrNoRAPL = errors.New("rapl: no intel-rapl zones found")

// ReadFileFunc abstracts os.ReadFile so a fault-injection harness (see
// internal/faultfs) can wrap the powercap tree's reads.
type ReadFileFunc func(string) ([]byte, error)

// PowercapZone reads one intel-rapl zone directory.
type PowercapZone struct {
	dir      string
	name     string
	maxRange uint64
	readFile ReadFileFunc
}

// Name implements Zone.
func (z *PowercapZone) Name() string { return z.name }

// MaxEnergyRange implements Zone.
func (z *PowercapZone) MaxEnergyRange() uint64 { return z.maxRange }

// ReadEnergy implements Zone by reading energy_uj.
func (z *PowercapZone) ReadEnergy() (uint64, error) {
	return readUint(z.readFile, filepath.Join(z.dir, "energy_uj"))
}

// Dir returns the zone's sysfs directory.
func (z *PowercapZone) Dir() string { return z.dir }

// OpenZone opens a single powercap zone directory, validating that it has
// the expected layout (name, energy_uj, max_energy_range_uj).
func OpenZone(dir string) (*PowercapZone, error) {
	return OpenZoneReader(dir, nil)
}

// OpenZoneReader is OpenZone with every file read routed through read
// (nil = os.ReadFile).
func OpenZoneReader(dir string, read ReadFileFunc) (*PowercapZone, error) {
	if read == nil {
		read = os.ReadFile
	}
	nameBytes, err := read(filepath.Join(dir, "name"))
	if err != nil {
		return nil, fmt.Errorf("rapl: zone %s: %w", dir, err)
	}
	maxRange, err := readUint(read, filepath.Join(dir, "max_energy_range_uj"))
	if err != nil {
		return nil, fmt.Errorf("rapl: zone %s: %w", dir, err)
	}
	z := &PowercapZone{
		dir:      dir,
		name:     strings.TrimSpace(string(nameBytes)),
		maxRange: maxRange,
		readFile: read,
	}
	if _, err := z.ReadEnergy(); err != nil {
		return nil, fmt.Errorf("rapl: zone %s: %w", dir, err)
	}
	return z, nil
}

// Discover finds the top-level intel-rapl package zones under root (pass
// DefaultPowercapRoot on a real machine). Sub-zones (core, uncore, dram)
// are skipped: the paper's models consume package power.
func Discover(root string) ([]*PowercapZone, error) {
	return DiscoverReader(root, nil)
}

// DiscoverReader is Discover with every zone file read routed through read
// (nil = os.ReadFile). Directory listing still uses the OS: discovery runs
// once at open time, while the injected reader covers the per-sample reads
// a long-running meter must survive.
func DiscoverReader(root string, read ReadFileFunc) ([]*PowercapZone, error) {
	entries, err := os.ReadDir(root)
	if os.IsNotExist(err) {
		// No powercap tree at all: same meaning as an empty one.
		return nil, fmt.Errorf("%w (no %s)", ErrNoRAPL, root)
	}
	if err != nil {
		return nil, fmt.Errorf("rapl: %w", err)
	}
	var zones []*PowercapZone
	for _, e := range entries {
		n := e.Name()
		// Top-level package zones are intel-rapl:<n>; sub-zones have a
		// second colon segment (intel-rapl:<n>:<m>).
		if !strings.HasPrefix(n, "intel-rapl:") || strings.Count(n, ":") != 1 {
			continue
		}
		z, err := OpenZoneReader(filepath.Join(root, n), read)
		if err != nil {
			return nil, err
		}
		zones = append(zones, z)
	}
	if len(zones) == 0 {
		return nil, ErrNoRAPL
	}
	return zones, nil
}

func readUint(read ReadFileFunc, path string) (uint64, error) {
	if read == nil {
		read = os.ReadFile
	}
	b, err := read(path)
	if err != nil {
		return 0, err
	}
	v, err := strconv.ParseUint(strings.TrimSpace(string(b)), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("parsing %s: %w", path, err)
	}
	return v, nil
}

package rapl

import (
	"errors"
	"math"
	"os"
	"path/filepath"
	"testing"
	"time"

	"powerdiv/internal/cpumodel"
	"powerdiv/internal/machine"
	"powerdiv/internal/workload"
)

func TestCounterBasicPower(t *testing.T) {
	c := NewCounter(0)
	if _, ok := c.Power(Reading{At: 0, EnergyUJ: 1_000_000}); ok {
		t.Error("first reading produced power")
	}
	// +50 J over 1 s = 50 W.
	p, ok := c.Power(Reading{At: time.Second, EnergyUJ: 51_000_000})
	if !ok {
		t.Fatal("second reading produced no power")
	}
	if math.Abs(float64(p)-50) > 1e-9 {
		t.Errorf("power = %v, want 50", p)
	}
}

func TestCounterWraparound(t *testing.T) {
	c := NewCounter(1_000_000) // 1 J range
	c.Power(Reading{At: 0, EnergyUJ: 900_000})
	// Wraps: 900000 → 100000 means 200000 µJ consumed.
	p, ok := c.Power(Reading{At: time.Second, EnergyUJ: 100_000})
	if !ok {
		t.Fatal("no power after wrap")
	}
	if math.Abs(float64(p)-0.2) > 1e-9 {
		t.Errorf("wrapped power = %v, want 0.2", p)
	}
}

func TestCounterNonAdvancingTime(t *testing.T) {
	c := NewCounter(0)
	c.Power(Reading{At: time.Second, EnergyUJ: 0})
	if _, ok := c.Power(Reading{At: time.Second, EnergyUJ: 100}); ok {
		t.Error("non-advancing timestamp produced power")
	}
}

func TestCounterReset(t *testing.T) {
	c := NewCounter(0)
	c.Power(Reading{At: 0, EnergyUJ: 0})
	c.Reset()
	if _, ok := c.Power(Reading{At: time.Second, EnergyUJ: 100}); ok {
		t.Error("first reading after reset produced power")
	}
}

func simRun(t *testing.T) *machine.Run {
	t.Helper()
	w, _ := workload.StressByName("int64")
	run, err := machine.Simulate(machine.Config{Spec: cpumodel.SmallIntel()}, []machine.Proc{
		{ID: "p", Workload: w, Threads: 2},
	}, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	return run
}

func TestSimZoneRoundTrip(t *testing.T) {
	run := simRun(t)
	z := NewSimZone(run, 12345)
	s, err := z.Trace(100 * time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	// The counter-derived power must match the simulator's power:
	// constant-load run → constant power 8+28+2×6.15 = 48.3 W.
	if math.Abs(s.Mean()-48.3) > 0.01 {
		t.Errorf("round-trip mean = %v, want 48.3", s.Mean())
	}
	if s.Spread() > 0.01 {
		t.Errorf("round-trip spread = %v, want ≈0", s.Spread())
	}
}

func TestSimZoneWraparound(t *testing.T) {
	run := simRun(t)
	// Start the counter just below the wrap point so it wraps mid-run.
	start := DefaultMaxEnergyRange - 100_000_000 // 100 J before wrapping
	z := NewSimZone(run, start)
	s, err := z.Trace(100 * time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.Mean()-48.3) > 0.01 {
		t.Errorf("post-wrap mean = %v, want 48.3", s.Mean())
	}
}

func TestSimZoneAdvanceAndRead(t *testing.T) {
	run := simRun(t)
	z := NewSimZone(run, 0)
	e0, err := z.ReadEnergy()
	if err != nil {
		t.Fatal(err)
	}
	z.Advance(time.Second)
	e1, err := z.ReadEnergy()
	if err != nil {
		t.Fatal(err)
	}
	// 48.3 W × 1 s = 48.3 J = 48.3e6 µJ.
	if math.Abs(float64(e1-e0)-48.3e6) > 1e5 {
		t.Errorf("1 s delta = %d µJ, want ≈48.3e6", e1-e0)
	}
}

func TestSimZoneTraceBadPeriod(t *testing.T) {
	z := NewSimZone(simRun(t), 0)
	if _, err := z.Trace(0); err == nil {
		t.Error("zero period accepted")
	}
}

// writeFakePowercap builds a fake /sys/class/powercap tree.
func writeFakePowercap(t *testing.T) string {
	t.Helper()
	root := t.TempDir()
	zones := map[string]struct {
		name   string
		energy string
	}{
		"intel-rapl:0":   {"package-0", "123456789"},
		"intel-rapl:1":   {"package-1", "987654321"},
		"intel-rapl:0:0": {"core", "111"},     // sub-zone: skipped
		"intel-rapl:0:1": {"dram", "222"},     // sub-zone: skipped
		"other-device":   {"not-rapl", "333"}, // unrelated: skipped
	}
	for dir, z := range zones {
		p := filepath.Join(root, dir)
		if err := os.MkdirAll(p, 0o755); err != nil {
			t.Fatal(err)
		}
		must := func(name, content string) {
			if err := os.WriteFile(filepath.Join(p, name), []byte(content+"\n"), 0o644); err != nil {
				t.Fatal(err)
			}
		}
		must("name", z.name)
		must("energy_uj", z.energy)
		must("max_energy_range_uj", "262143328850")
	}
	return root
}

func TestDiscoverPowercap(t *testing.T) {
	root := writeFakePowercap(t)
	zones, err := Discover(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(zones) != 2 {
		t.Fatalf("found %d zones, want 2 package zones", len(zones))
	}
	names := map[string]bool{}
	for _, z := range zones {
		names[z.Name()] = true
		if z.MaxEnergyRange() != 262143328850 {
			t.Errorf("zone %s max range = %d", z.Name(), z.MaxEnergyRange())
		}
		if _, err := z.ReadEnergy(); err != nil {
			t.Errorf("zone %s read: %v", z.Name(), err)
		}
	}
	if !names["package-0"] || !names["package-1"] {
		t.Errorf("zone names = %v", names)
	}
}

func TestDiscoverNoRAPL(t *testing.T) {
	if _, err := Discover(t.TempDir()); !errors.Is(err, ErrNoRAPL) {
		t.Errorf("empty tree error = %v, want ErrNoRAPL", err)
	}
	// A missing root means the same as an empty one: no RAPL.
	if _, err := Discover(filepath.Join(t.TempDir(), "missing")); !errors.Is(err, ErrNoRAPL) {
		t.Errorf("missing root error = %v, want ErrNoRAPL", err)
	}
}

func TestOpenZoneErrors(t *testing.T) {
	root := t.TempDir()
	dir := filepath.Join(root, "intel-rapl:0")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	// Missing name file.
	if _, err := OpenZone(dir); err == nil {
		t.Error("zone without name accepted")
	}
	os.WriteFile(filepath.Join(dir, "name"), []byte("package-0\n"), 0o644)
	// Missing max range.
	if _, err := OpenZone(dir); err == nil {
		t.Error("zone without max range accepted")
	}
	os.WriteFile(filepath.Join(dir, "max_energy_range_uj"), []byte("garbage\n"), 0o644)
	if _, err := OpenZone(dir); err == nil {
		t.Error("zone with garbage max range accepted")
	}
	os.WriteFile(filepath.Join(dir, "max_energy_range_uj"), []byte("1000\n"), 0o644)
	// Missing energy file.
	if _, err := OpenZone(dir); err == nil {
		t.Error("zone without energy accepted")
	}
	os.WriteFile(filepath.Join(dir, "energy_uj"), []byte("42\n"), 0o644)
	z, err := OpenZone(dir)
	if err != nil {
		t.Fatalf("complete zone rejected: %v", err)
	}
	e, err := z.ReadEnergy()
	if err != nil || e != 42 {
		t.Errorf("ReadEnergy = %d, %v", e, err)
	}
}

func TestPowercapZoneWithCounter(t *testing.T) {
	// End-to-end: sysfs zone + Counter = a live power meter.
	root := writeFakePowercap(t)
	dir := filepath.Join(root, "intel-rapl:0")
	z, err := OpenZone(dir)
	if err != nil {
		t.Fatal(err)
	}
	c := NewCounter(z.MaxEnergyRange())
	e0, _ := z.ReadEnergy()
	c.Power(Reading{At: 0, EnergyUJ: e0})
	// Simulate 30 W for 2 s by rewriting the file.
	os.WriteFile(filepath.Join(dir, "energy_uj"), []byte("183456789\n"), 0o644)
	e1, _ := z.ReadEnergy()
	p, ok := c.Power(Reading{At: 2 * time.Second, EnergyUJ: e1})
	if !ok {
		t.Fatal("no power")
	}
	if math.Abs(float64(p)-30) > 1e-9 {
		t.Errorf("power = %v, want 30", p)
	}
}

func TestCounterEnergyDelta(t *testing.T) {
	c := NewCounter(0)
	if _, _, ok := c.EnergyDelta(Reading{At: 0, EnergyUJ: 1_000_000}); ok {
		t.Error("first reading produced a delta")
	}
	j, dt, ok := c.EnergyDelta(Reading{At: time.Second, EnergyUJ: 11_000_000})
	if !ok || math.Abs(float64(j)-10) > 1e-9 || dt != time.Second {
		t.Errorf("delta = (%v, %v, %v), want (10 J, 1s, true)", j, dt, ok)
	}
}

// A rejected (non-advancing) reading must leave the baseline intact so the
// zone's energy accumulates toward the next accepted reading — the property
// the live meter's dropped-tick handling relies on.
func TestCounterEnergyDeltaConservedAcrossRejection(t *testing.T) {
	c := NewCounter(0)
	c.EnergyDelta(Reading{At: 0, EnergyUJ: 0})
	if _, _, ok := c.EnergyDelta(Reading{At: 0, EnergyUJ: 5_000_000}); ok {
		t.Fatal("non-advancing reading accepted")
	}
	j, dt, ok := c.EnergyDelta(Reading{At: 2 * time.Second, EnergyUJ: 20_000_000})
	if !ok {
		t.Fatal("no delta")
	}
	if math.Abs(float64(j)-20) > 1e-9 || dt != 2*time.Second {
		t.Errorf("delta = (%v, %v), want (20 J, 2s): rejected reading lost energy", j, dt)
	}
}

func TestCounterEnergyDeltaWrap(t *testing.T) {
	c := NewCounter(1_000_000) // 1 J range
	c.EnergyDelta(Reading{At: 0, EnergyUJ: 900_000})
	j, _, ok := c.EnergyDelta(Reading{At: time.Second, EnergyUJ: 100_000})
	if !ok || math.Abs(float64(j)-0.2) > 1e-9 {
		t.Errorf("wrapped delta = (%v, %v), want 0.2 J", j, ok)
	}
}

// Rebase re-baselines without booking energy: the next delta starts from
// the rebased reading.
func TestCounterRebase(t *testing.T) {
	c := NewCounter(0)
	c.EnergyDelta(Reading{At: 0, EnergyUJ: 50_000_000})
	c.Rebase(Reading{At: time.Second, EnergyUJ: 0})
	j, dt, ok := c.EnergyDelta(Reading{At: 2 * time.Second, EnergyUJ: 3_000_000})
	if !ok || math.Abs(float64(j)-3) > 1e-9 || dt != time.Second {
		t.Errorf("post-rebase delta = (%v, %v, %v), want (3 J, 1s, true)", j, dt, ok)
	}
}

// DiscoverReader routes every zone file read through the injected reader,
// the seam the fault-injection harness attacks.
func TestDiscoverReaderInjected(t *testing.T) {
	root := t.TempDir()
	dir := filepath.Join(root, "intel-rapl:0")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	files := map[string]string{"name": "package-0\n", "max_energy_range_uj": "1000\n", "energy_uj": "5\n"}
	for name, content := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	reads := 0
	zones, err := DiscoverReader(root, func(path string) ([]byte, error) {
		reads++
		return os.ReadFile(path)
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(zones) != 1 || reads == 0 {
		t.Fatalf("zones = %d, reads = %d", len(zones), reads)
	}
	before := reads
	if uj, err := zones[0].ReadEnergy(); err != nil || uj != 5 {
		t.Errorf("ReadEnergy = (%d, %v)", uj, err)
	}
	if reads != before+1 {
		t.Errorf("ReadEnergy bypassed the injected reader (reads %d → %d)", before, reads)
	}
	boom := errors.New("boom")
	_, err = OpenZoneReader(dir, func(string) ([]byte, error) { return nil, boom })
	if !errors.Is(err, boom) {
		t.Errorf("OpenZoneReader err = %v, want boom", err)
	}
}

// Package rapl provides RAPL-style energy sensors: monotonically increasing
// microjoule counters that wrap at a zone-specific range, exactly like the
// Linux powercap interface exposes Intel RAPL.
//
// Two backends implement the Zone interface:
//
//   - PowercapZone reads a real /sys/class/powercap tree (or any directory
//     with the same layout, which is how the tests exercise it on machines
//     without RAPL) — the same data source Scaphandre and Kepler use;
//   - SimZone replays a machine simulator run as an energy counter,
//     including wraparound, so that everything downstream of the sensor is
//     exercised with the exact counter semantics of real hardware.
//
// The Counter helper turns successive readings into power samples, handling
// wraparound the way all RAPL consumers must.
package rapl

import (
	"fmt"
	"time"

	"powerdiv/internal/machine"
	"powerdiv/internal/trace"
	"powerdiv/internal/units"
)

// DefaultMaxEnergyRange is the counter range used by SimZone: the value is
// typical of real package zones (≈262 kJ).
const DefaultMaxEnergyRange uint64 = 262143328850

// Zone is one RAPL energy counter domain (a package, core, dram... zone).
type Zone interface {
	// Name is the zone label, e.g. "package-0".
	Name() string
	// MaxEnergyRange returns the counter's wraparound range in µJ.
	MaxEnergyRange() uint64
	// ReadEnergy returns the cumulative energy counter in µJ.
	ReadEnergy() (uint64, error)
}

// Reading is a timestamped counter value.
type Reading struct {
	At       time.Duration
	EnergyUJ uint64
}

// Counter converts successive readings of one zone into average power over
// each interval, handling counter wraparound.
type Counter struct {
	maxRange uint64
	last     Reading
	primed   bool
}

// NewCounter returns a Counter for a zone with the given wraparound range.
func NewCounter(maxRange uint64) *Counter {
	if maxRange == 0 {
		maxRange = DefaultMaxEnergyRange
	}
	return &Counter{maxRange: maxRange}
}

// Power ingests a reading and returns the average power since the previous
// one. ok is false for the first reading (no interval yet) and for
// non-advancing timestamps.
func (c *Counter) Power(r Reading) (units.Watts, bool) {
	j, dt, ok := c.EnergyDelta(r)
	if !ok {
		return 0, false
	}
	return j.Power(dt), true
}

// EnergyDelta ingests a reading and returns the energy accumulated and the
// time elapsed since the previous accepted reading, handling counter
// wraparound. ok is false for the first reading (which primes the counter)
// and for non-advancing timestamps; a rejected reading leaves the stored
// baseline intact, so the zone's energy keeps accumulating toward the next
// accepted reading instead of being lost. This is what lets a meter skip
// readings across degraded ticks (failed sibling zones, stalled clocks) and
// still conserve energy: the delta spans every skipped interval.
func (c *Counter) EnergyDelta(r Reading) (units.Joules, time.Duration, bool) {
	if !c.primed {
		c.last = r
		c.primed = true
		return 0, 0, false
	}
	dt := r.At - c.last.At
	if dt <= 0 {
		return 0, 0, false
	}
	var deltaUJ uint64
	if r.EnergyUJ >= c.last.EnergyUJ {
		deltaUJ = r.EnergyUJ - c.last.EnergyUJ
	} else {
		// Counter wrapped.
		deltaUJ = c.maxRange - c.last.EnergyUJ + r.EnergyUJ
	}
	c.last = r
	return units.Joules(float64(deltaUJ) * 1e-6), dt, true
}

// Rebase replaces the stored baseline with r without accumulating any
// energy. Meters use it when a reading is implausible (a counter that was
// re-registered and restarted from an arbitrary value is indistinguishable
// from a wrap and would otherwise book a huge spurious delta): the interval
// is discarded and metering resumes from r.
func (c *Counter) Rebase(r Reading) {
	c.last = r
	c.primed = true
}

// Reset forgets the previous reading.
func (c *Counter) Reset() { c.primed = false }

// SimZone replays a simulated run as a RAPL package counter.
type SimZone struct {
	name     string
	maxRange uint64
	run      *machine.Run
	cursor   time.Duration
	// cum[i] is the energy accumulated before tick i.
	cum []units.Joules
	// startUJ offsets the counter so wraparound paths get exercised.
	startUJ uint64
}

// NewSimZone wraps a run as a package-0 zone. startUJ sets the counter's
// initial value (real counters start at an arbitrary point in their range).
func NewSimZone(run *machine.Run, startUJ uint64) *SimZone {
	z := &SimZone{
		name:     "package-0",
		maxRange: DefaultMaxEnergyRange,
		run:      run,
		startUJ:  startUJ % DefaultMaxEnergyRange,
	}
	tick := run.Tick()
	z.cum = make([]units.Joules, len(run.Ticks)+1)
	for i, rec := range run.Ticks {
		z.cum[i+1] = z.cum[i] + rec.Power.Energy(tick)
	}
	return z
}

// Name implements Zone.
func (z *SimZone) Name() string { return z.name }

// MaxEnergyRange implements Zone.
func (z *SimZone) MaxEnergyRange() uint64 { return z.maxRange }

// ReadEnergy implements Zone: it reads the counter at the current cursor
// position (advanced with Advance, like wall time on real hardware).
func (z *SimZone) ReadEnergy() (uint64, error) {
	return z.EnergyAt(z.cursor), nil
}

// Advance moves the zone's clock forward.
func (z *SimZone) Advance(dt time.Duration) { z.cursor += dt }

// EnergyAt returns the counter value at simulation time t: the energy
// accumulated over all fully elapsed ticks plus the partially elapsed one.
func (z *SimZone) EnergyAt(t time.Duration) uint64 {
	tick := z.run.Tick()
	if t < 0 {
		t = 0
	}
	full := int(t / tick)
	if full > len(z.run.Ticks) {
		full = len(z.run.Ticks)
	}
	e := z.cum[full]
	if full < len(z.run.Ticks) {
		partial := t - time.Duration(full)*tick
		e += z.run.Ticks[full].Power.Energy(partial)
	}
	uj := z.startUJ + uint64(e.Microjoules())
	return uj % z.maxRange
}

// Trace samples the zone every period for the run's duration and converts
// the counter stream back into a power series — the round trip a real
// RAPL-based meter performs.
func (z *SimZone) Trace(period time.Duration) (*trace.Series, error) {
	if period <= 0 {
		return nil, fmt.Errorf("rapl: non-positive period %v", period)
	}
	c := NewCounter(z.maxRange)
	s := trace.New()
	for t := time.Duration(0); t <= z.run.Duration; t += period {
		uj := z.EnergyAt(t)
		if p, ok := c.Power(Reading{At: t, EnergyUJ: uj}); ok {
			s.Append(t, float64(p))
		}
	}
	return s, nil
}

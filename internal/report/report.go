// Package report renders experiment results as aligned ASCII tables and
// CSV files — the textual equivalents of the paper's tables and figure
// data series.
package report

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// Table is a titled grid of cells.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row; short rows are padded with empty cells, long rows
// are an error caught at render time via panic (a construction bug).
func (t *Table) AddRow(cells ...string) {
	if len(cells) > len(t.Columns) {
		panic(fmt.Sprintf("report: row with %d cells in a %d-column table", len(cells), len(t.Columns)))
	}
	row := make([]string, len(t.Columns))
	copy(row, cells)
	t.Rows = append(t.Rows, row)
}

// AddRowf appends a row formatting each value with %v, floats with %.4g.
func (t *Table) AddRowf(values ...interface{}) {
	cells := make([]string, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case float64:
			cells[i] = fmt.Sprintf("%.4g", x)
		case float32:
			cells[i] = fmt.Sprintf("%.4g", x)
		default:
			cells[i] = fmt.Sprint(v)
		}
	}
	t.AddRow(cells...)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len([]rune(c))
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if n := len([]rune(cell)); n > widths[i] {
				widths[i] = n
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			b.WriteString(strings.Repeat(" ", widths[i]-len([]rune(cell))))
		}
		b.WriteString("\n")
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// CSV renders the table as RFC-4180-ish CSV (quotes cells containing
// commas, quotes or newlines).
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(cell, ",\"\n") {
				b.WriteByte('"')
				b.WriteString(strings.ReplaceAll(cell, `"`, `""`))
				b.WriteByte('"')
			} else {
				b.WriteString(cell)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// WriteCSV writes the table to path, creating parent directories.
func (t *Table) WriteCSV(path string) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("report: %w", err)
	}
	if err := os.WriteFile(path, []byte(t.CSV()), 0o644); err != nil {
		return fmt.Errorf("report: %w", err)
	}
	return nil
}

// Percent formats a fraction as a percentage with two decimals, e.g.
// 0.0312 → "3.12 %".
func Percent(frac float64) string {
	return fmt.Sprintf("%.2f %%", frac*100)
}

// Markdown renders the table as a GitHub-flavoured Markdown table (title as
// a bold caption line when present).
func (t *Table) Markdown() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "**%s**\n\n", t.Title)
	}
	writeRow := func(cells []string) {
		b.WriteString("|")
		for _, cell := range cells {
			b.WriteString(" ")
			b.WriteString(strings.ReplaceAll(cell, "|", "\\|"))
			b.WriteString(" |")
		}
		b.WriteString("\n")
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = "---"
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

package report

import (
	"fmt"
	"math"
	"strings"
	"time"

	"powerdiv/internal/trace"
)

// sparkLevels are the eighth-block characters used by Spark.
var sparkLevels = []rune("▁▂▃▄▅▆▇█")

// Spark renders a series as a unicode sparkline of the given width,
// scaled between the series' min and max. A constant series renders at
// mid height; an empty series renders as an empty string.
func Spark(s *trace.Series, width int) string {
	if s.Len() == 0 || width <= 0 {
		return ""
	}
	lo, hi := s.Min(), s.Max()
	var b strings.Builder
	start, end := s.Start(), s.End()
	span := end - start
	for i := 0; i < width; i++ {
		var at time.Duration
		if width == 1 {
			at = start
		} else {
			at = start + time.Duration(int64(span)*int64(i)/int64(width-1))
		}
		v, ok := s.ValueAt(at)
		if !ok {
			b.WriteRune(' ')
			continue
		}
		level := len(sparkLevels) / 2
		if hi > lo {
			frac := (v - lo) / (hi - lo)
			level = int(math.Round(frac * float64(len(sparkLevels)-1)))
			if level < 0 {
				level = 0
			}
			if level >= len(sparkLevels) {
				level = len(sparkLevels) - 1
			}
		}
		b.WriteRune(sparkLevels[level])
	}
	return b.String()
}

// SparkLine renders a labelled sparkline with its range, e.g.
//
//	build2     ▁▂▇██▇▂▁  [44.1 – 76.3 W]
func SparkLine(label string, s *trace.Series, width int) string {
	return fmt.Sprintf("%-14s %s  [%.1f – %.1f W]", label, Spark(s, width), s.Min(), s.Max())
}

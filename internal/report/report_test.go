package report

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"powerdiv/internal/trace"
)

func TestTableString(t *testing.T) {
	tb := NewTable("Demo", "name", "value")
	tb.AddRow("alpha", "1")
	tb.AddRow("beta-long-name", "22")
	s := tb.String()
	if !strings.HasPrefix(s, "Demo\n") {
		t.Errorf("missing title: %q", s)
	}
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Fatalf("%d lines, want 5: %q", len(lines), s)
	}
	// Columns align: every "value" cell starts at the same offset.
	idx := strings.Index(lines[1], "value")
	if !strings.HasPrefix(lines[3][idx-2:], "  1") && lines[3][idx] != '1' {
		t.Errorf("misaligned row: %q", lines[3])
	}
}

func TestTableShortRowPadded(t *testing.T) {
	tb := NewTable("", "a", "b", "c")
	tb.AddRow("only")
	if len(tb.Rows[0]) != 3 {
		t.Errorf("short row not padded: %v", tb.Rows[0])
	}
}

func TestTableLongRowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("oversized row did not panic")
		}
	}()
	tb := NewTable("", "a")
	tb.AddRow("1", "2")
}

func TestAddRowfFormats(t *testing.T) {
	tb := NewTable("", "x", "y", "z")
	tb.AddRowf(3, 0.031456, "text")
	row := tb.Rows[0]
	if row[0] != "3" || row[1] != "0.03146" || row[2] != "text" {
		t.Errorf("AddRowf = %v", row)
	}
}

func TestCSVEscaping(t *testing.T) {
	tb := NewTable("", "name", "note")
	tb.AddRow(`plain`, `has,comma`)
	tb.AddRow(`has"quote`, "has\nnewline")
	csv := tb.CSV()
	want := "name,note\nplain,\"has,comma\"\n\"has\"\"quote\",\"has\nnewline\"\n"
	if csv != want {
		t.Errorf("CSV = %q, want %q", csv, want)
	}
}

func TestWriteCSV(t *testing.T) {
	tb := NewTable("", "a")
	tb.AddRow("1")
	path := filepath.Join(t.TempDir(), "sub", "out.csv")
	if err := tb.WriteCSV(path); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != "a\n1\n" {
		t.Errorf("file = %q", b)
	}
}

func TestPercent(t *testing.T) {
	if got := Percent(0.0315); got != "3.15 %" {
		t.Errorf("Percent = %q", got)
	}
	if got := Percent(0.491); got != "49.10 %" {
		t.Errorf("Percent = %q", got)
	}
}

func TestSpark(t *testing.T) {
	s := traceFromValues(1, 2, 3, 4, 5, 6, 7, 8)
	got := Spark(s, 8)
	if got != "▁▂▃▄▅▆▇█" {
		t.Errorf("Spark = %q", got)
	}
	// Constant series renders mid-level blocks.
	c := traceFromValues(5, 5, 5, 5)
	mid := Spark(c, 4)
	if len([]rune(mid)) != 4 {
		t.Errorf("constant spark = %q", mid)
	}
	for _, r := range mid {
		if r != '▅' {
			t.Errorf("constant spark rune = %q", string(r))
		}
	}
	// Empty and degenerate inputs.
	if Spark(traceFromValues(), 8) != "" {
		t.Error("empty series spark not empty")
	}
	if Spark(s, 0) != "" {
		t.Error("zero width spark not empty")
	}
	if got := Spark(traceFromValues(42), 1); len([]rune(got)) != 1 {
		t.Errorf("single-sample spark = %q", got)
	}
}

func TestSparkLine(t *testing.T) {
	s := traceFromValues(10, 20)
	line := SparkLine("build2", s, 4)
	if !strings.Contains(line, "build2") || !strings.Contains(line, "[10.0 – 20.0 W]") {
		t.Errorf("SparkLine = %q", line)
	}
}

// traceFromValues builds a 1s-period series for spark tests.
func traceFromValues(vals ...float64) *trace.Series {
	return trace.FromValues(time.Second, vals...)
}

func TestMarkdown(t *testing.T) {
	tb := NewTable("Caption", "model", "mean AE")
	tb.AddRow("scaphandre", "3.15 %")
	tb.AddRow("has|pipe", "x")
	md := tb.Markdown()
	want := "**Caption**\n\n| model | mean AE |\n| --- | --- |\n| scaphandre | 3.15 % |\n| has\\|pipe | x |\n"
	if md != want {
		t.Errorf("Markdown = %q, want %q", md, want)
	}
	// No title → no caption line.
	tb2 := NewTable("", "a")
	tb2.AddRow("1")
	if strings.HasPrefix(tb2.Markdown(), "**") {
		t.Error("untitled table rendered a caption")
	}
}

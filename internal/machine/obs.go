package machine

import "powerdiv/internal/obs"

// Simulator metrics. The tick loop never touches an atomic: Simulate
// accumulates into plain fields on its private tickScratch and flushes three
// counter updates per run, so the instrumented loop keeps the allocs/op and
// ns/op recorded in BENCH_campaign.json whether or not the registry is
// enabled.
var (
	obsRuns = obs.NewCounter("powerdiv_machine_runs_total",
		"Completed Simulate calls.")
	obsTicksSimulated = obs.NewCounter("powerdiv_machine_ticks_simulated_total",
		"Simulation ticks stepped across all runs.")
	obsScratchReused = obs.NewCounter("powerdiv_machine_scratch_reused_ticks_total",
		"Ticks that reused every fixed-size scratch buffer (no growth).")
	obsSegments = obs.NewCounter("powerdiv_machine_segments_total",
		"Constant segments evaluated across all runs (one stepTick each; "+
			"equals ticks simulated when the segment engine is disabled).")
)

package machine

import "sort"

// Roster is the stable process index of one run: the scenario's process IDs
// in sorted order, with an ID→slot lookup built once. Every dense per-tick
// column in the run (TickRecord.Procs, the models package's sample and
// estimate columns) is indexed by roster slot, so the hot loops index
// slices instead of hashing strings into per-tick maps.
//
// A roster is immutable after construction and safe to share across
// goroutines; the memoization cache shares one roster among every consumer
// of a cached run.
type Roster struct {
	ids   []string
	index map[string]int
}

// NewRoster builds a roster from a set of process IDs. The IDs are copied
// and sorted; duplicates are collapsed.
func NewRoster(ids []string) *Roster {
	sorted := append([]string(nil), ids...)
	sort.Strings(sorted)
	out := sorted[:0]
	for i, id := range sorted {
		if i == 0 || sorted[i-1] != id {
			out = append(out, id)
		}
	}
	r := &Roster{ids: out, index: make(map[string]int, len(out))}
	for i, id := range out {
		r.index[id] = i
	}
	return r
}

// Len returns the number of roster slots.
func (r *Roster) Len() int {
	if r == nil {
		return 0
	}
	return len(r.ids)
}

// IDs returns the roster's process IDs in slot order (sorted). The slice is
// shared — callers must not modify it.
func (r *Roster) IDs() []string {
	if r == nil {
		return nil
	}
	return r.ids
}

// ID returns the process ID of a slot.
func (r *Roster) ID(slot int) string { return r.ids[slot] }

// Slot returns the slot of a process ID.
func (r *Roster) Slot(id string) (int, bool) {
	if r == nil {
		return 0, false
	}
	i, ok := r.index[id]
	return i, ok
}

package machine

import "powerdiv/internal/units"

// Variation is the per-node spread a fleet applies on top of a shared
// machine configuration: clock skew, sensor grade and an independent
// noise seed. The fields compose with Config.WithVariation so a fleet
// layer derives hundreds of distinct-but-related nodes from one
// calibrated config without reaching into spec internals.
type Variation struct {
	// SpecName renames the varied spec ("" keeps the base name).
	SpecName string
	// CoresPerSocket overrides the spec's per-socket core count when
	// positive — capacity heterogeneity across hardware generations.
	CoresPerSocket int
	// FreqScale multiplies the spec's whole frequency domain when
	// positive — per-node clock skew, typically within a few percent of 1.
	FreqScale float64
	// NoiseScale multiplies the config's sensor-noise standard deviation
	// when positive — per-node sensor grade.
	NoiseScale float64
	// Seed replaces the config's noise seed, so every node draws an
	// independent sensor-noise stream.
	Seed int64
}

// WithVariation returns the config with a node's variation applied. The
// receiver is unchanged; specs are value types, so the variant shares no
// mutable state with the base.
func (c Config) WithVariation(v Variation) Config {
	c.Spec = c.Spec.Variant(v.SpecName, v.CoresPerSocket, v.FreqScale)
	if v.NoiseScale > 0 {
		c.NoiseStddev = units.Watts(float64(c.NoiseStddev) * v.NoiseScale)
	}
	c.Seed = v.Seed
	return c
}

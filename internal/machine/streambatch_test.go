package machine

import (
	"math"
	"testing"
	"time"

	"powerdiv/internal/cpumodel"
	"powerdiv/internal/units"
)

// TestStreamBatchMatchesStream pins the batch contract: repetition k of a
// StreamBatch pass is bit-identical — every tick field, every proc column,
// and the StreamInfo — to a standalone Stream run with Seed = seeds[k].
// The scenario is noisy with staggered starts and an early finisher so the
// noise overlay, early-exit and ProcEnd paths are all exercised.
func TestStreamBatchMatchesStream(t *testing.T) {
	for _, noise := range []units.Watts{0.25, 0} {
		cfg := prodConfig(cpumodel.Dahu())
		cfg.NoiseStddev = noise
		procs := []Proc{
			stressProc("b-late", "matrixprod", 2),
			stressProc("a-short", "fibonacci", 2),
		}
		procs[0].Start = 500 * time.Millisecond
		procs[1].Stop = 2 * time.Second
		const dur = 5 * time.Second
		seeds := []int64{42, 7, 99}

		type capture struct {
			ticks []TickRecord
			info  *StreamInfo
		}
		want := make([]capture, len(seeds))
		for k, seed := range seeds {
			solo := cfg
			solo.Seed = seed
			var ticks []TickRecord
			info, err := Stream(solo, procs, dur, func(rec *TickRecord) error {
				r := *rec
				r.Procs = append([]ProcTick(nil), rec.Procs...)
				ticks = append(ticks, r)
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			want[k] = capture{ticks, info}
		}

		got := make([]capture, len(seeds))
		info, err := StreamBatch(cfg, procs, dur, seeds, func(rep int, rec *TickRecord) error {
			r := *rec
			r.Procs = append([]ProcTick(nil), rec.Procs...)
			got[rep].ticks = append(got[rep].ticks, r)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}

		for k := range seeds {
			w := want[k]
			if len(got[k].ticks) != len(w.ticks) {
				t.Fatalf("noise=%v rep %d: %d ticks batched, %d solo", noise, k, len(got[k].ticks), len(w.ticks))
			}
			for i, wr := range w.ticks {
				gr := got[k].ticks[i]
				if gr.At != wr.At || gr.Freq != wr.Freq {
					t.Fatalf("noise=%v rep %d tick %d header mismatch", noise, k, i)
				}
				for _, p := range [][2]float64{
					{float64(gr.Power), float64(wr.Power)},
					{float64(gr.TruePower), float64(wr.TruePower)},
					{float64(gr.Idle), float64(wr.Idle)},
					{float64(gr.Residual), float64(wr.Residual)},
				} {
					if math.Float64bits(p[0]) != math.Float64bits(p[1]) {
						t.Fatalf("noise=%v rep %d tick %d power fields differ", noise, k, i)
					}
				}
				if len(gr.Procs) != len(wr.Procs) {
					t.Fatalf("noise=%v rep %d tick %d proc column width", noise, k, i)
				}
				for s := range wr.Procs {
					gp, wp := gr.Procs[s], wr.Procs[s]
					if gp.CPUTime != wp.CPUTime || gp.Threads != wp.Threads ||
						math.Float64bits(float64(gp.ActivePower)) != math.Float64bits(float64(wp.ActivePower)) {
						t.Fatalf("noise=%v rep %d tick %d slot %d differs", noise, k, i, s)
					}
				}
			}
			if info.Ticks != w.info.Ticks || info.Duration != w.info.Duration {
				t.Fatalf("noise=%v rep %d info %d/%v != %d/%v",
					noise, k, info.Ticks, info.Duration, w.info.Ticks, w.info.Duration)
			}
			for id, at := range w.info.ProcEnd {
				if info.ProcEnd[id] != at {
					t.Fatalf("noise=%v rep %d ProcEnd[%s] differs", noise, k, id)
				}
			}
		}
	}
}

// TestStreamBatchNoSeeds pins the degenerate input: an empty seed set is a
// caller error, not a silent no-op.
func TestStreamBatchNoSeeds(t *testing.T) {
	cfg := prodConfig(cpumodel.Dahu())
	procs := []Proc{stressProc("a", "fibonacci", 1)}
	if _, err := StreamBatch(cfg, procs, time.Second, nil, func(int, *TickRecord) error { return nil }); err == nil {
		t.Fatal("StreamBatch with no seeds succeeded")
	}
}

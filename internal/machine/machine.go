// Package machine is the discrete-time simulator of a physical server that
// the evaluation protocol runs against. It replaces the paper's Grid'5000
// hardware: it schedules process threads onto logical CPUs, drives the DVFS
// governor, and produces per-tick machine power with the idle / residual /
// active decomposition of the cpumodel package — plus the ground truth
// (per-process active power) that real hardware cannot expose, which is
// exactly what makes the protocol's objective value computable here.
//
// The simulator is deterministic: all randomness (sensor noise) comes from
// an explicitly seeded source in the Config.
package machine

import (
	"errors"
	"fmt"
	"math"
	"time"

	"powerdiv/internal/cpumodel"
	"powerdiv/internal/perfcnt"
	"powerdiv/internal/trace"
	"powerdiv/internal/units"
	"powerdiv/internal/workload"
)

// DefaultTick is the simulation step and sensor sampling period.
const DefaultTick = 100 * time.Millisecond

// ErrContention is returned by Run when the processes demand more logical
// CPUs than the machine has. The paper's protocol requires contention-free
// scenarios ("ensuring there is no contention on the machine"), so the
// simulator refuses to run oversubscribed ones rather than silently
// time-sharing.
var ErrContention = errors.New("machine: scenario oversubscribes logical CPUs")

// Config describes the simulated machine and its performance settings —
// the paper's "laboratory" context is HT and turbo off, the "production"
// context both on.
type Config struct {
	Spec cpumodel.Spec
	// Hyperthreading exposes the second hardware thread of each core to
	// the scheduler.
	Hyperthreading bool
	// Turbo enables turboboost in the frequency governor.
	Turbo bool
	// MaxFreq is an optional cpufreq-style frequency cap (0 = none),
	// used by the §III-B frequency-capping observations.
	MaxFreq units.Hertz
	// Tick is the simulation step; DefaultTick if zero.
	Tick time.Duration
	// NoiseStddev is the standard deviation of Gaussian noise added to the
	// measured machine power (the trace a sensor sees); ground-truth
	// fields are noise-free. stress-ng loads vary by under 0.5 W, so the
	// calibrations use ≈0.25 W.
	NoiseStddev units.Watts
	// Seed seeds the noise source.
	Seed int64
}

func (c Config) tick() time.Duration {
	if c.Tick <= 0 {
		return DefaultTick
	}
	return c.Tick
}

// schedulableCPUs returns how many logical CPUs the scheduler may use.
func (c Config) schedulableCPUs() int {
	if c.Hyperthreading {
		return c.Spec.Topology.LogicalCPUs()
	}
	return c.Spec.Topology.PhysicalCores()
}

// Proc is one process in a scenario.
type Proc struct {
	// ID names the process; it must be unique within a scenario.
	ID string
	// Workload drives the process's load and counters.
	Workload workload.Workload
	// Threads is the process's thread count (the default when the
	// workload has no phase script, and the ceiling when it does).
	Threads int
	// Start is the process's arrival time into the scenario.
	Start time.Duration
	// Stop ends the process early (0 = run until the scenario ends or the
	// workload's script completes).
	Stop time.Duration
	// CPUQuota is a cgroup-style cap on the fraction of CPU time each
	// thread may consume (0 or 1 = uncapped; 0.5 = the paper's §IV-B
	// 50 % cap).
	CPUQuota float64
	// Pinned optionally pins the process's threads to specific logical
	// CPUs (taskset-style); thread i runs on Pinned[i]. Must have at
	// least Threads entries when set.
	Pinned []int
}

func (p Proc) quota() float64 {
	if p.CPUQuota <= 0 || p.CPUQuota > 1 {
		return 1
	}
	return p.CPUQuota
}

// Validate checks the process description against a config.
func (p Proc) Validate(cfg Config) error {
	if p.ID == "" {
		return fmt.Errorf("machine: process with empty ID")
	}
	if err := p.Workload.Validate(); err != nil {
		return fmt.Errorf("machine: process %s: %w", p.ID, err)
	}
	if p.Threads <= 0 {
		return fmt.Errorf("machine: process %s: thread count %d", p.ID, p.Threads)
	}
	if p.Stop != 0 && p.Stop < p.Start {
		return fmt.Errorf("machine: process %s: stop %v before start %v", p.ID, p.Stop, p.Start)
	}
	if p.Pinned != nil {
		if len(p.Pinned) < p.Threads {
			return fmt.Errorf("machine: process %s: %d pins for %d threads", p.ID, len(p.Pinned), p.Threads)
		}
		n := cfg.schedulableCPUs()
		for _, cpu := range p.Pinned {
			if cpu < 0 || cpu >= n {
				return fmt.Errorf("machine: process %s: pin %d outside 0..%d", p.ID, cpu, n-1)
			}
		}
	}
	return nil
}

// ProcTick is a process's activity during one tick: its CPU time, its
// ground-truth active power (the sum of the active power of the cores its
// threads ran on — the quantity real hardware cannot report), and its
// synthesised performance counters.
type ProcTick struct {
	CPUTime     units.CPUTime
	ActivePower units.Watts
	Threads     int
	Counters    perfcnt.Counters
}

// Present reports whether the process was running during the tick. Dense
// tick columns hold a slot for every roster process; absent ones are zero
// records, and a running process always has at least one placed thread.
func (p ProcTick) Present() bool { return p.Threads > 0 }

// TickRecord is one simulation step's full observation.
type TickRecord struct {
	At time.Duration
	// Power is the machine power a sensor reads (ground truth + noise) —
	// the paper's C_{S,t}.
	Power units.Watts
	// TruePower is the noise-free machine total.
	TruePower units.Watts
	// Idle, Residual and Active decompose TruePower.
	Idle     units.Watts
	Residual units.Watts
	Active   units.Watts
	// Freq is the frequency busy cores ran at during the tick.
	Freq units.Hertz
	// Procs is the tick's dense activity column, indexed by the run's
	// roster slot. Processes not yet started or already finished have a
	// zero record (Present() == false). All columns of one run are slices
	// of a single slab allocated up front by Simulate.
	Procs []ProcTick
}

// Running returns the number of processes active during the tick.
func (t *TickRecord) Running() int {
	n := 0
	for i := range t.Procs {
		if t.Procs[i].Present() {
			n++
		}
	}
	return n
}

// Run is the result of simulating a scenario.
type Run struct {
	Config Config
	// Roster indexes the scenario's processes; each tick's Procs column is
	// indexed by roster slot.
	Roster   *Roster
	Ticks    []TickRecord
	Duration time.Duration
	// ProcEnd maps process ID to the time its workload finished (script
	// completed or Stop reached); processes still running at scenario end
	// map to the scenario duration. This is the paper's T_S^{P_i}.
	ProcEnd map[string]time.Duration
}

// ProcAt returns the activity of process id at tick index i; ok is false
// when the process was not running that tick (or is not in the roster).
func (r *Run) ProcAt(i int, id string) (ProcTick, bool) {
	slot, ok := r.Roster.Slot(id)
	if !ok {
		return ProcTick{}, false
	}
	pt := r.Ticks[i].Procs[slot]
	return pt, pt.Present()
}

// Simulate runs the scenario for at most maxDur and returns the trace.
// The run ends early when every process has finished. It returns
// ErrContention (wrapped) if at any tick the processes demand more logical
// CPUs than the machine exposes.
//
// Simulate is a collector over Stream: it preallocates the whole run up
// front (one TickRecord slice and one ProcTick slab that every tick's
// column is carved from) and copies each streamed tick in, so callers that
// need the full series keep the columnar layout while streaming consumers
// skip the materialisation entirely.
func Simulate(cfg Config, procs []Proc, maxDur time.Duration) (*Run, error) {
	run := &Run{Config: cfg}
	n := len(procs)
	maxTicks := int(maxDur/cfg.tick()) + 1
	if maxTicks < 0 {
		maxTicks = 0
	}
	run.Ticks = make([]TickRecord, 0, maxTicks)
	slab := make([]ProcTick, maxTicks*n)
	info, err := Stream(cfg, procs, maxDur, func(rec *TickRecord) error {
		col := slab[:n:n]
		slab = slab[n:]
		copy(col, rec.Procs)
		r := *rec
		r.Procs = col
		run.Ticks = append(run.Ticks, r)
		return nil
	})
	if err != nil {
		return nil, err
	}
	run.Roster = info.Roster
	run.Duration = info.Duration
	run.ProcEnd = info.ProcEnd
	return run, nil
}

// allStarted reports whether every process's start time has passed.
func allStarted(procs []Proc, t time.Duration) bool {
	for _, p := range procs {
		if p.Start > t {
			return false
		}
	}
	return true
}

// threadPlacement is one busy thread's slot for a tick. It is deliberately
// pointer-free: the placement buffer is appended to for every busy thread
// of every tick, and a pointer field would drag a write barrier into each
// of those stores. The slot index reaches the process via procs[slot].
type threadPlacement struct {
	// slot is the process's roster slot (its index in the sorted
	// scheduling order), used to write the tick's dense Procs column.
	slot int
	cpu  int
	util float64
	cost units.Watts
}

// procDemand is one running process's CPU demand for a tick. Every thread
// of a process shares the same utilization and cost, and pinning is
// all-or-nothing per process (Proc.Validate), so demand is a pin list plus
// an unpinned-thread count rather than a per-thread record.
type procDemand struct {
	slot int
	util float64
	cost units.Watts
	// pins are the pinned logical CPUs, one per thread (nil when the
	// process is unpinned).
	pins []int
	// unpinned is the number of threads the scheduler places.
	unpinned int
}

// tickScratch holds the per-tick working buffers that Simulate reuses
// across ticks, so the hot loop only allocates what escapes into the
// TickRecord. Each Simulate call owns its own scratch; nothing here is
// shared between runs.
type tickScratch struct {
	demands    []procDemand
	placements []threadPlacement
	cpuBusy    []bool
	activePhys []bool
	loads      []cpumodel.CoreLoad
	perCore    []units.Watts
	// costOn caches float64(Workload.CostOn(spec)) per roster slot — the
	// value is constant for the whole run, and the map lookup behind CostOn
	// is too hot to repeat every tick. Filled once on the run's first tick.
	costOn []float64
	// synth/synthSet memoise perfcnt.Synthesize per slot within one tick:
	// every placement of a process shares the same util (hence CPU time)
	// and the tick's frequency, so the synthesized counters are identical
	// across a process's threads. The per-placement Add order is untouched,
	// keeping the counter accumulation bit-identical.
	synth    []perfcnt.Counters
	synthSet []bool
	// pickCore/pickAny are pickCPU's scan cursors, reset each tick. Busy
	// bits are only ever set within a tick, so the lowest CPU satisfying
	// either scan's predicate is nondecreasing and the scans never need to
	// revisit earlier indices.
	pickCore, pickAny int
	// grownTicks counts ticks where a fixed-size buffer had to allocate.
	// Simulate flushes it to the obs counters once per run, keeping the
	// tick loop free of atomics.
	grownTicks uint64
}

// resetTick readies the buffers for one step on nCPU logical CPUs and phys
// physical cores.
func (sc *tickScratch) resetTick(nCPU, phys int) {
	if cap(sc.cpuBusy) < nCPU || cap(sc.activePhys) < phys || cap(sc.loads) < nCPU {
		sc.grownTicks++
	}
	sc.demands = sc.demands[:0]
	sc.placements = sc.placements[:0]
	sc.pickCore, sc.pickAny = 0, 0
	sc.cpuBusy = resetBools(sc.cpuBusy, nCPU)
	sc.activePhys = resetBools(sc.activePhys, phys)
	if cap(sc.loads) < nCPU {
		sc.loads = make([]cpumodel.CoreLoad, nCPU)
	}
	sc.loads = sc.loads[:nCPU]
	for i := range sc.loads {
		sc.loads[i] = cpumodel.CoreLoad{}
	}
}

// resetBools returns a length-n all-false slice, reusing b's storage when
// it is large enough.
func resetBools(b []bool, n int) []bool {
	if cap(b) < n {
		return make([]bool, n)
	}
	b = b[:n]
	for i := range b {
		b[i] = false
	}
	return b
}

// stepTick computes one simulation step into rec (an out-parameter so the
// per-tick loop never copies the record struct). It reports whether any
// process was active this tick, and ErrContention on oversubscription.
//
// Unpinned threads are placed fairly: one thread per running process in
// round-robin order before any process gets its second CPU, so that when
// demand spills onto SMT siblings the discount is shared across processes
// (as a load-balancing scheduler would) instead of falling entirely on the
// last process in ID order.
func stepTick(cfg Config, procs []Proc, t, tick time.Duration, phys, nCPU int, ends []time.Duration, sc *tickScratch, col []ProcTick, rec *TickRecord) (bool, error) {
	sc.resetTick(nCPU, phys)
	if sc.costOn == nil {
		sc.costOn = make([]float64, len(procs))
		for i := range procs {
			sc.costOn[i] = float64(procs[i].Workload.CostOn(cfg.Spec.Name))
		}
		sc.synth = make([]perfcnt.Counters, len(procs))
	}
	sc.synthSet = resetBools(sc.synthSet, len(procs))

	// Gather each running process's demand for this tick. procs is in
	// sorted ID order, so index i is the process's roster slot.
	for i := range procs {
		p := &procs[i]
		if t < p.Start {
			continue
		}
		if p.Stop != 0 && t >= p.Stop {
			markEnd(ends, i, p.Stop)
			continue
		}
		phase, done := p.Workload.PhaseAt(t-p.Start, p.Threads)
		if done {
			markEnd(ends, i, p.Start+p.Workload.Duration())
			continue
		}
		threads := phase.Threads
		if threads > p.Threads {
			threads = p.Threads
		}
		d := procDemand{
			slot: i,
			util: phase.Util * p.quota(),
			cost: units.Watts(sc.costOn[i] * phase.Intensity),
		}
		if p.Pinned != nil {
			d.pins = p.Pinned[:threads]
		} else {
			d.unpinned = threads
		}
		sc.demands = append(sc.demands, d)
	}

	// Pinned threads claim their CPUs first.
	for di := range sc.demands {
		d := &sc.demands[di]
		for _, pin := range d.pins {
			if sc.cpuBusy[pin] {
				return false, ErrContention
			}
			sc.cpuBusy[pin] = true
			sc.placements = append(sc.placements, threadPlacement{slot: d.slot, cpu: pin, util: d.util, cost: d.cost})
		}
	}
	// Unpinned threads: round-robin across processes.
	for round := 0; ; round++ {
		progressed := false
		for di := range sc.demands {
			d := &sc.demands[di]
			if round >= d.unpinned {
				continue
			}
			progressed = true
			cpu, ok := sc.pickCPU(phys)
			if !ok {
				return false, ErrContention
			}
			sc.cpuBusy[cpu] = true
			sc.placements = append(sc.placements, threadPlacement{slot: d.slot, cpu: cpu, util: d.util, cost: d.cost})
		}
		if !progressed {
			break
		}
	}

	// Governor: frequency from the number of active physical cores.
	nActive := 0
	for pi := range sc.placements {
		if c := sc.placements[pi].cpu % phys; !sc.activePhys[c] {
			sc.activePhys[c] = true
			nActive++
		}
	}
	freq := cfg.Spec.Freq.ActiveFreq(nActive, cfg.Turbo, cfg.MaxFreq)

	// Build per-logical-CPU loads. A logical CPU is an SMT sibling when it
	// is the higher-numbered thread of a core whose other thread is busy.
	for pi := range sc.placements {
		pl := &sc.placements[pi]
		sibling := false
		if pl.cpu >= phys && sc.cpuBusy[pl.cpu-phys] {
			sibling = true
		}
		sc.loads[pl.cpu] = cpumodel.CoreLoad{
			Util:       pl.util,
			CostAtBase: pl.cost,
			Freq:       freq,
			SMTSibling: sibling,
		}
	}
	bd := cfg.Spec.Power.PowerInto(sc.loads, sc.perCore)
	sc.perCore = bd.PerCore

	*rec = TickRecord{
		At:        t,
		Idle:      bd.Idle,
		Residual:  bd.Residual,
		Active:    bd.Active,
		TruePower: bd.Total(),
		Freq:      freq,
		Procs:     col,
	}
	rec.Power = rec.TruePower
	for pi := range sc.placements {
		pl := &sc.placements[pi]
		pt := &col[pl.slot]
		cpuTime := units.CPUTime(float64(tick) * pl.util)
		pt.CPUTime += cpuTime
		pt.ActivePower += bd.PerCore[pl.cpu]
		pt.Threads++
		if !sc.synthSet[pl.slot] {
			sc.synth[pl.slot] = perfcnt.Synthesize(procs[pl.slot].Workload.Mix, cpuTime, freq)
			sc.synthSet[pl.slot] = true
		}
		pt.Counters = pt.Counters.Add(sc.synth[pl.slot])
	}
	return len(sc.placements) > 0, nil
}

// endUnset marks a roster slot whose process has not yet been observed
// finished. It lies far outside any representable scenario time, so it
// cannot collide with a real end time (Stop and Start+Duration are bounded
// by the scenario's own times).
const endUnset = time.Duration(math.MinInt64)

// markEnd records the first time a process was observed finished. ends is
// indexed by roster slot (procs are already in sorted-ID order), replacing
// the per-tick map hashing the slot-indexed store was introduced to avoid.
func markEnd(ends []time.Duration, slot int, at time.Duration) {
	if ends[slot] == endUnset {
		ends[slot] = at
	}
}

// pickCPU returns a free logical CPU, preferring cores with no busy thread
// (physical-first placement, like the Linux scheduler under low load).
// Logical CPU numbering: 0..phys-1 are the first threads of each core,
// phys..2·phys-1 their SMT siblings.
//
// The scans resume from per-tick cursors instead of index 0: within a tick
// busy bits are only ever set, so once an index fails a scan's predicate it
// fails for the rest of the tick and the lowest passing index never moves
// backwards. The picked CPU is identical to a full scan's.
func (sc *tickScratch) pickCPU(phys int) (int, bool) {
	busy := sc.cpuBusy
	for ; sc.pickCore < phys && sc.pickCore < len(busy); sc.pickCore++ {
		c := sc.pickCore
		if !busy[c] && (c+phys >= len(busy) || !busy[c+phys]) {
			return c, true
		}
	}
	for ; sc.pickAny < len(busy); sc.pickAny++ {
		if !busy[sc.pickAny] {
			return sc.pickAny, true
		}
	}
	return 0, false
}

// Tick returns the run's sampling period.
func (r *Run) Tick() time.Duration { return r.Config.tick() }

// PowerSeries returns the measured machine power trace (C_{S,t}).
func (r *Run) PowerSeries() *trace.Series {
	s := trace.NewWithCap(len(r.Ticks))
	for _, rec := range r.Ticks {
		s.Append(rec.At, float64(rec.Power))
	}
	return s
}

// TruePowerSeries returns the noise-free machine power trace.
func (r *Run) TruePowerSeries() *trace.Series {
	s := trace.NewWithCap(len(r.Ticks))
	for _, rec := range r.Ticks {
		s.Append(rec.At, float64(rec.TruePower))
	}
	return s
}

// ActiveSeries returns the machine's ground-truth active power (A_{S,t}).
func (r *Run) ActiveSeries() *trace.Series {
	s := trace.NewWithCap(len(r.Ticks))
	for _, rec := range r.Ticks {
		s.Append(rec.At, float64(rec.Active))
	}
	return s
}

// ResidualSeries returns the ground-truth residual power over time.
func (r *Run) ResidualSeries() *trace.Series {
	s := trace.NewWithCap(len(r.Ticks))
	for _, rec := range r.Ticks {
		s.Append(rec.At, float64(rec.Residual))
	}
	return s
}

// ProcActiveSeries returns a process's ground-truth active power trace.
func (r *Run) ProcActiveSeries(id string) *trace.Series {
	s := trace.NewWithCap(len(r.Ticks))
	slot, ok := r.Roster.Slot(id)
	if !ok {
		return s
	}
	for _, rec := range r.Ticks {
		if pt := rec.Procs[slot]; pt.Present() {
			s.Append(rec.At, float64(pt.ActivePower))
		}
	}
	return s
}

// ProcCPUSeries returns a process's CPU utilization trace (cores busy).
func (r *Run) ProcCPUSeries(id string) *trace.Series {
	s := trace.NewWithCap(len(r.Ticks))
	slot, ok := r.Roster.Slot(id)
	if !ok {
		return s
	}
	tick := r.Tick()
	for _, rec := range r.Ticks {
		if pt := rec.Procs[slot]; pt.Present() {
			s.Append(rec.At, pt.CPUTime.Utilization(tick))
		}
	}
	return s
}

// Energy returns the total measured energy of the run.
func (r *Run) Energy() units.Joules {
	return r.PowerSeries().Energy(r.Tick())
}

// ProcIDs returns the IDs of all processes that were active at any tick,
// sorted. A roster process that never ran (e.g. its start lay beyond the
// simulated horizon) is not included.
func (r *Run) ProcIDs() []string {
	out := make([]string, 0, r.Roster.Len())
	for slot, id := range r.Roster.IDs() {
		for _, rec := range r.Ticks {
			if rec.Procs[slot].Present() {
				out = append(out, id)
				break
			}
		}
	}
	return out
}

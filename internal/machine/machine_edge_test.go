package machine

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"
	"time"

	"powerdiv/internal/cpumodel"
	"powerdiv/internal/units"
	"powerdiv/internal/workload"
)

// scripted builds a single-phase scripted workload.
func scripted(name string, d time.Duration, threads int, intensity, util float64) workload.Workload {
	return workload.Workload{
		Name: name,
		Kind: workload.App,
		Mix:  workload.CounterMix{IPC: 1},
		Cost: map[string]units.Watts{"SMALL INTEL": 6},
		Script: []workload.Phase{
			{Duration: d, Threads: threads, Intensity: intensity, Util: util},
		},
	}
}

func TestPhaseThreadsCappedByProcThreads(t *testing.T) {
	// A phase wanting 6 threads on a 2-thread process uses 2.
	cfg := labConfig(cpumodel.SmallIntel())
	w := scripted("wide", 2*time.Second, 6, 1, 1)
	run, err := Simulate(cfg, []Proc{{ID: "p", Workload: w, Threads: 2}}, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if pt, _ := run.ProcAt(0, "p"); pt.Threads != 2 {
		t.Errorf("busy threads = %d, want 2 (proc ceiling)", pt.Threads)
	}
}

func TestPhaseIntensityScalesActivePower(t *testing.T) {
	cfg := labConfig(cpumodel.SmallIntel())
	full, err := Simulate(cfg, []Proc{{ID: "p", Workload: scripted("full", time.Second, 2, 1.0, 1), Threads: 2}}, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	half, err := Simulate(cfg, []Proc{{ID: "p", Workload: scripted("half", time.Second, 2, 0.5, 1), Threads: 2}}, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	fa := full.ActiveSeries().Mean()
	ha := half.ActiveSeries().Mean()
	if math.Abs(ha-fa/2) > 1e-9 {
		t.Errorf("half-intensity active = %v, want %v", ha, fa/2)
	}
	// Intensity does not change CPU time.
	if full.ProcCPUSeries("p").Mean() != half.ProcCPUSeries("p").Mean() {
		t.Error("intensity changed CPU accounting")
	}
}

func TestSMTSiblingOnlyWhenPrimaryBusy(t *testing.T) {
	// A thread pinned to a sibling logical CPU whose primary is idle is a
	// full core, not a discounted sibling.
	cfg := prodConfig(cpumodel.SmallIntel())
	cfg.Turbo = false
	w, _ := workload.StressByName("int64")
	onSibling := Proc{ID: "p", Workload: w, Threads: 1, Pinned: []int{7}} // sibling of core 1
	run, err := Simulate(cfg, []Proc{onSibling}, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	// Full per-core cost: 6.15 W, not 30 % of it.
	if got := run.ProcActiveSeries("p").Mean(); math.Abs(got-6.15) > 1e-9 {
		t.Errorf("lone sibling active = %v, want 6.15", got)
	}
	// Now with the primary busy too, the sibling gets the discount.
	both := []Proc{
		{ID: "a", Workload: w, Threads: 1, Pinned: []int{1}},
		{ID: "b", Workload: w, Threads: 1, Pinned: []int{7}},
	}
	run2, err := Simulate(cfg, both, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if got := run2.ProcActiveSeries("b").Mean(); math.Abs(got-6.15*0.3) > 1e-9 {
		t.Errorf("paired sibling active = %v, want %v", got, 6.15*0.3)
	}
	if got := run2.ProcActiveSeries("a").Mean(); math.Abs(got-6.15) > 1e-9 {
		t.Errorf("primary active = %v, want 6.15", got)
	}
}

func TestNoiseIsZeroMeanAndBounded(t *testing.T) {
	cfg := labConfig(cpumodel.SmallIntel())
	cfg.NoiseStddev = 0.25
	cfg.Seed = 99
	w, _ := workload.StressByName("int64")
	run, err := Simulate(cfg, []Proc{{ID: "p", Workload: w, Threads: 2}}, 60*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	noisy := run.PowerSeries().Mean()
	truth := run.TruePowerSeries().Mean()
	if math.Abs(noisy-truth) > 0.05 {
		t.Errorf("noise mean offset = %v, want ≈0", noisy-truth)
	}
	spread := run.PowerSeries().Spread()
	if spread < 0.5 || spread > 3 {
		t.Errorf("noise spread = %v, want ≈4σ ≈ 1-2 W", spread)
	}
}

func TestMultiPhaseScriptTransitions(t *testing.T) {
	cfg := labConfig(cpumodel.SmallIntel())
	w := workload.Workload{
		Name: "twophase",
		Kind: workload.App,
		Mix:  workload.CounterMix{IPC: 1},
		Cost: map[string]units.Watts{"SMALL INTEL": 6},
		Script: []workload.Phase{
			{Duration: time.Second, Threads: 3, Intensity: 1, Util: 1},
			{Duration: time.Second, Threads: 1, Intensity: 1, Util: 1},
		},
	}
	run, err := Simulate(cfg, []Proc{{ID: "p", Workload: w, Threads: 3}}, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	firstPhase := run.ProcActiveSeries("p").Slice(0, time.Second).Mean()
	secondPhase := run.ProcActiveSeries("p").Slice(time.Second, 2*time.Second).Mean()
	if math.Abs(firstPhase-18) > 1e-9 || math.Abs(secondPhase-6) > 1e-9 {
		t.Errorf("phase powers = %v/%v, want 18/6", firstPhase, secondPhase)
	}
	if run.ProcEnd["p"] != 2*time.Second {
		t.Errorf("ProcEnd = %v, want 2s", run.ProcEnd["p"])
	}
}

func TestTickConfigurable(t *testing.T) {
	cfg := labConfig(cpumodel.SmallIntel())
	cfg.Tick = time.Second
	w, _ := workload.StressByName("int64")
	run, err := Simulate(cfg, []Proc{{ID: "p", Workload: w, Threads: 1}}, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(run.Ticks) != 5 {
		t.Errorf("%d ticks at 1s for 5s, want 5", len(run.Ticks))
	}
	if run.Tick() != time.Second {
		t.Errorf("Tick() = %v", run.Tick())
	}
	// Energy is invariant to tick size for constant loads.
	fine := labConfig(cpumodel.SmallIntel())
	fine.Tick = 50 * time.Millisecond
	run2, err := Simulate(fine, []Proc{{ID: "p", Workload: w, Threads: 1}}, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(run.Energy()-run2.Energy())) > 1e-6*float64(run.Energy()) {
		t.Errorf("energy differs across tick sizes: %v vs %v", run.Energy(), run2.Energy())
	}
}

func TestProcSeriesEmptyForUnknownID(t *testing.T) {
	cfg := labConfig(cpumodel.SmallIntel())
	w, _ := workload.StressByName("int64")
	run, err := Simulate(cfg, []Proc{{ID: "p", Workload: w, Threads: 1}}, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if run.ProcActiveSeries("ghost").Len() != 0 {
		t.Error("series for unknown process not empty")
	}
	if run.ProcCPUSeries("ghost").Len() != 0 {
		t.Error("CPU series for unknown process not empty")
	}
}

func TestUnpinnedPhysicalFirstPlacement(t *testing.T) {
	// With HT on and 6 threads on SMALL INTEL, all land on physical cores
	// (no SMT discount) — physical-first placement.
	cfg := prodConfig(cpumodel.SmallIntel())
	cfg.Turbo = false
	w, _ := workload.StressByName("int64")
	run, err := Simulate(cfg, []Proc{{ID: "p", Workload: w, Threads: 6}}, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if got := run.ProcActiveSeries("p").Mean(); math.Abs(got-6*6.15) > 1e-9 {
		t.Errorf("6-thread active = %v, want %v (no SMT discount)", got, 6*6.15)
	}
}

// Property: for random feasible scenarios, the scheduler conserves demand
// (every requested thread gets exactly one CPU-tick of placement) and the
// power decomposition matches the per-process ground truth sum.
func TestSchedulerConservationProperty(t *testing.T) {
	fns := workload.StressNames()
	check := func(seed int64, n1, n2, n3 uint8) bool {
		cfg := prodConfig(cpumodel.SmallIntel())
		cfg.Seed = seed
		threads := []int{int(n1%4) + 1, int(n2%4) + 1, int(n3%4) + 1} // ≤ 12 total
		var procs []Proc
		for i, n := range threads {
			idx := int(uint64(seed)%uint64(len(fns))+uint64(i*5)) % len(fns)
			w, _ := workload.StressByName(fns[idx])
			procs = append(procs, Proc{ID: fmt.Sprintf("p%d", i), Workload: w, Threads: n})
		}
		run, err := Simulate(cfg, procs, time.Second)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for ti, rec := range run.Ticks {
			var cpuSum float64
			var activeSum units.Watts
			for i, p := range procs {
				pt, ok := run.ProcAt(ti, p.ID)
				if !ok {
					t.Fatalf("missing proc %s", p.ID)
				}
				// Demand conservation: full-load stress gets all threads.
				if got := pt.CPUTime.Utilization(run.Tick()); math.Abs(got-float64(threads[i])) > 1e-9 {
					t.Fatalf("proc %s placed %.2f cores, want %d", p.ID, got, threads[i])
				}
				cpuSum += pt.CPUTime.Seconds()
				activeSum += pt.ActivePower
			}
			if math.Abs(float64(activeSum-rec.Active)) > 1e-9 {
				t.Fatalf("per-proc active %v != machine active %v", activeSum, rec.Active)
			}
			wantCPU := float64(threads[0]+threads[1]+threads[2]) * run.Tick().Seconds()
			if math.Abs(cpuSum-wantCPU) > 1e-9 {
				t.Fatalf("cpu time %v != demand %v", cpuSum, wantCPU)
			}
		}
		return true
	}
	f := func(seed int64, n1, n2, n3 uint8) bool { return check(seed, n1, n2, n3) }
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Fair placement: when demand spills onto SMT siblings, every process with
// multiple threads shares the discount rather than one process absorbing
// it all.
func TestFairSMTPlacement(t *testing.T) {
	cfg := prodConfig(cpumodel.SmallIntel())
	cfg.Turbo = false
	w, _ := workload.StressByName("int64")
	// Two 4-thread processes on 6 physical cores: 2 threads must be
	// siblings, one from each process under fair placement.
	run, err := Simulate(cfg, []Proc{
		{ID: "a", Workload: w, Threads: 4},
		{ID: "b", Workload: w, Threads: 4},
	}, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	pta, _ := run.ProcAt(0, "a")
	ptb, _ := run.ProcAt(0, "b")
	pa := float64(pta.ActivePower)
	pb := float64(ptb.ActivePower)
	if math.Abs(pa-pb) > 1e-9 {
		t.Errorf("identical processes got unequal active power: %.3f vs %.3f", pa, pb)
	}
	// Each should have 3 physical + 1 sibling: 3×6.15 + 0.3×6.15.
	want := 3*6.15 + 0.3*6.15
	if math.Abs(pa-want) > 1e-9 {
		t.Errorf("per-proc active = %.3f, want %.3f", pa, want)
	}
}

package machine

import (
	"testing"

	"powerdiv/internal/cpumodel"
)

func TestConfigWithVariation(t *testing.T) {
	base := Config{Spec: cpumodel.SmallIntel(), NoiseStddev: 0.25, Seed: 1}
	v := base.WithVariation(Variation{
		SpecName:       "node-spec",
		CoresPerSocket: 4,
		FreqScale:      0.97,
		NoiseScale:     1.5,
		Seed:           99,
	})
	if v.Spec.Name != "node-spec" || v.Spec.Topology.CoresPerSocket != 4 {
		t.Errorf("spec variant not applied: %+v", v.Spec)
	}
	if v.NoiseStddev != 0.375 {
		t.Errorf("noise %v, want 0.375", v.NoiseStddev)
	}
	if v.Seed != 99 {
		t.Errorf("seed %d, want 99", v.Seed)
	}
	if base.Seed != 1 || base.Spec.Name != "SMALL INTEL" || base.NoiseStddev != 0.25 {
		t.Errorf("base config mutated: %+v", base)
	}
	if err := v.Spec.Validate(); err != nil {
		t.Fatalf("varied spec invalid: %v", err)
	}

	// Two nodes varied from one base produce different sensor streams but
	// share the calibration family.
	a := base.WithVariation(Variation{Seed: 2, FreqScale: 1.02})
	b := base.WithVariation(Variation{Seed: 3, FreqScale: 0.98})
	if a.Seed == b.Seed {
		t.Error("node seeds collide")
	}
	if a.Spec.Freq.Base <= b.Spec.Freq.Base {
		t.Errorf("clock skew not applied: %v vs %v", a.Spec.Freq.Base, b.Spec.Freq.Base)
	}
}

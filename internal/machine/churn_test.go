package machine

import (
	"testing"
	"time"

	"powerdiv/internal/cpumodel"
	"powerdiv/internal/units"
)

// TestChurnIdleGapRunsToWindow pins the no-early-exit rule under churn: when
// every early process exits before a late arrival starts, the run must coast
// through the idle gap (near-idle power, no present procs) instead of
// declaring the workload finished, and still honour the late arrival.
func TestChurnIdleGapRunsToWindow(t *testing.T) {
	cfg := labConfig(cpumodel.SmallIntel())
	early := stressProc("a-early", "int64", 2)
	early.Stop = 2 * time.Second
	late := stressProc("b-late", "fibonacci", 1)
	late.Start = 5 * time.Second

	run, err := Simulate(cfg, []Proc{early, late}, 8*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if run.Duration < 8*time.Second {
		t.Fatalf("run ended at %v before the late arrival's window closed", run.Duration)
	}
	idlePower := cfg.Spec.Power.Idle
	for ti, rec := range run.Ticks {
		_, earlyOn := run.ProcAt(ti, "a-early")
		_, lateOn := run.ProcAt(ti, "b-late")
		switch {
		case rec.At < 2*time.Second:
			if !earlyOn || lateOn {
				t.Fatalf("t=%v: presence early=%v late=%v, want true/false", rec.At, earlyOn, lateOn)
			}
		case rec.At < 5*time.Second:
			if earlyOn || lateOn {
				t.Fatalf("t=%v: presence early=%v late=%v during idle gap", rec.At, earlyOn, lateOn)
			}
			// The gap draws idle power plus noise only: no active component.
			if float64(rec.TruePower) > float64(idlePower)*1.5 {
				t.Fatalf("t=%v: idle-gap power %v vs idle %v", rec.At, rec.TruePower, idlePower)
			}
		default:
			if earlyOn || !lateOn {
				t.Fatalf("t=%v: presence early=%v late=%v, want false/true", rec.At, earlyOn, lateOn)
			}
		}
	}
	if got := run.ProcEnd["a-early"]; got != 2*time.Second {
		t.Errorf("early ProcEnd = %v, want 2s", got)
	}
	if got := run.ProcEnd["b-late"]; got != 8*time.Second {
		t.Errorf("late ProcEnd = %v, want 8s (ran to window)", got)
	}
}

// TestChurnStaggeredRoster pins dense-column bookkeeping under staggered
// arrivals and exits: every tick's Procs column reports Present exactly for
// the instances whose [Start, Stop) covers it, and CPU time only accrues
// while present.
func TestChurnStaggeredRoster(t *testing.T) {
	cfg := labConfig(cpumodel.SmallIntel())
	mk := func(id string, start, stop time.Duration) Proc {
		p := stressProc(id, "int64", 1)
		p.Start, p.Stop = start, stop
		return p
	}
	procs := []Proc{
		mk("p0", 0, 0),
		mk("p1", time.Second, 3*time.Second),
		mk("p2", 2*time.Second, 4500*time.Millisecond),
		mk("p3", 4*time.Second, 0),
	}
	window := 6 * time.Second
	run, err := Simulate(cfg, procs, window)
	if err != nil {
		t.Fatal(err)
	}
	cum := make(map[string]units.CPUTime, len(procs))
	for ti, rec := range run.Ticks {
		for _, p := range procs {
			pt, present := run.ProcAt(ti, p.ID)
			want := rec.At >= p.Start && (p.Stop == 0 || rec.At < p.Stop)
			if present != want {
				t.Fatalf("t=%v %s: presence %v, want %v", rec.At, p.ID, present, want)
			}
			if !present {
				continue
			}
			if pt.CPUTime < cum[p.ID] {
				t.Fatalf("t=%v %s: CPU time went backwards (%v < %v)", rec.At, p.ID, pt.CPUTime, cum[p.ID])
			}
			cum[p.ID] = pt.CPUTime
		}
	}
	for _, p := range procs {
		stop := p.Stop
		if stop == 0 {
			stop = window
		}
		if got := run.ProcEnd[p.ID]; got != stop {
			t.Errorf("%s: ProcEnd = %v, want %v", p.ID, got, stop)
		}
		alive := stop - p.Start
		if cum[p.ID] <= 0 || cum[p.ID].Duration() > alive {
			t.Errorf("%s: accrued CPU time %v outside (0, %v]", p.ID, cum[p.ID], alive)
		}
	}
}

package machine

import (
	"errors"
	"math"
	"testing"
	"time"

	"powerdiv/internal/cpumodel"
)

// TestStreamMatchesSimulate pins the collector contract: the ticks Stream
// yields are bit-identical to the records Simulate stores, on a noisy
// scenario with staggered starts and an early finisher (so the early-exit
// and ProcEnd paths are exercised too).
func TestStreamMatchesSimulate(t *testing.T) {
	cfg := prodConfig(cpumodel.Dahu())
	cfg.NoiseStddev = 0.25
	cfg.Seed = 42
	procs := []Proc{
		stressProc("b-late", "matrixprod", 2),
		stressProc("a-short", "fibonacci", 2),
	}
	procs[0].Start = 500 * time.Millisecond
	procs[1].Stop = 2 * time.Second
	const dur = 5 * time.Second

	run, err := Simulate(cfg, procs, dur)
	if err != nil {
		t.Fatal(err)
	}

	var streamed []TickRecord
	info, err := Stream(cfg, procs, dur, func(rec *TickRecord) error {
		r := *rec
		r.Procs = append([]ProcTick(nil), rec.Procs...)
		streamed = append(streamed, r)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	if info.Ticks != len(run.Ticks) || len(streamed) != len(run.Ticks) {
		t.Fatalf("stream yielded %d ticks (info %d), run has %d", len(streamed), info.Ticks, len(run.Ticks))
	}
	if info.Duration != run.Duration {
		t.Errorf("duration %v != %v", info.Duration, run.Duration)
	}
	if got, want := info.Roster.IDs(), run.Roster.IDs(); len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Errorf("roster %v != %v", got, want)
	}
	if len(info.ProcEnd) != len(run.ProcEnd) {
		t.Fatalf("ProcEnd %v != %v", info.ProcEnd, run.ProcEnd)
	}
	for id, at := range run.ProcEnd {
		if info.ProcEnd[id] != at {
			t.Errorf("ProcEnd[%s] %v != %v", id, info.ProcEnd[id], at)
		}
	}
	for i, want := range run.Ticks {
		got := streamed[i]
		if got.At != want.At || got.Freq != want.Freq {
			t.Fatalf("tick %d header mismatch: %+v vs %+v", i, got, want)
		}
		for _, p := range [][2]float64{
			{float64(got.Power), float64(want.Power)},
			{float64(got.TruePower), float64(want.TruePower)},
			{float64(got.Idle), float64(want.Idle)},
			{float64(got.Residual), float64(want.Residual)},
			{float64(got.Active), float64(want.Active)},
		} {
			if math.Float64bits(p[0]) != math.Float64bits(p[1]) {
				t.Fatalf("tick %d power field mismatch: %v vs %v", i, p[0], p[1])
			}
		}
		for slot := range want.Procs {
			if got.Procs[slot] != want.Procs[slot] {
				t.Fatalf("tick %d slot %d: %+v vs %+v", i, slot, got.Procs[slot], want.Procs[slot])
			}
		}
	}
}

// TestStreamYieldError proves a consumer error aborts the run and surfaces
// unwrapped.
func TestStreamYieldError(t *testing.T) {
	sentinel := errors.New("stop here")
	ticks := 0
	_, err := Stream(labConfig(cpumodel.SmallIntel()), []Proc{stressProc("p0", "fibonacci", 1)}, 5*time.Second, func(*TickRecord) error {
		ticks++
		if ticks == 3 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want sentinel", err)
	}
	if ticks != 3 {
		t.Fatalf("yield ran %d times after error, want 3", ticks)
	}
}

// TestStreamScratchColumnReused documents the scratch contract: the Procs
// slice handed to yield is reused between ticks, so a consumer that keeps
// it sees later ticks' data.
func TestStreamScratchColumnReused(t *testing.T) {
	var first []ProcTick
	_, err := Stream(labConfig(cpumodel.SmallIntel()), []Proc{stressProc("p0", "matrixprod", 1)}, time.Second, func(rec *TickRecord) error {
		if first == nil {
			first = rec.Procs
		} else if &first[0] != &rec.Procs[0] {
			t.Fatal("expected the scratch column to be reused across ticks")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

package machine

import (
	"errors"
	"math"
	"testing"
	"time"

	"powerdiv/internal/cpumodel"
	"powerdiv/internal/units"
	"powerdiv/internal/workload"
)

// labConfig is the paper's laboratory context: HT and turbo off.
func labConfig(spec cpumodel.Spec) Config {
	return Config{Spec: spec}
}

// prodConfig is the paper's production context: HT and turbo on.
func prodConfig(spec cpumodel.Spec) Config {
	return Config{Spec: spec, Hyperthreading: true, Turbo: true}
}

func stressProc(id, fn string, threads int) Proc {
	w, ok := workload.StressByName(fn)
	if !ok {
		panic("unknown stress function " + fn)
	}
	return Proc{ID: id, Workload: w, Threads: threads}
}

func TestSimulateIdleMachine(t *testing.T) {
	run, err := Simulate(labConfig(cpumodel.SmallIntel()), nil, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	// An empty scenario still produces the idle floor.
	if got := run.PowerSeries().Mean(); math.Abs(got-8) > 1e-9 {
		t.Errorf("idle power = %v, want 8", got)
	}
	for _, rec := range run.Ticks {
		if rec.Residual != 0 || rec.Active != 0 {
			t.Fatalf("idle tick has residual/active %v/%v", rec.Residual, rec.Active)
		}
	}
}

func TestSimulateSingleStress(t *testing.T) {
	cfg := labConfig(cpumodel.SmallIntel())
	run, err := Simulate(cfg, []Proc{stressProc("p0", "matrixprod", 3)}, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	// 3 cores × 7.1 W + residual 28 + idle 8 = 57.3 W.
	want := 8 + 28 + 3*7.1
	if got := run.TruePowerSeries().Mean(); math.Abs(got-want) > 1e-6 {
		t.Errorf("power = %v, want %v", got, want)
	}
	// Ground-truth per-process active power is the 3 cores' cost.
	if got := run.ProcActiveSeries("p0").Mean(); math.Abs(got-21.3) > 1e-6 {
		t.Errorf("proc active = %v, want 21.3", got)
	}
	// Frequency is base (no turbo).
	if run.Ticks[0].Freq != 3.6*units.GHz {
		t.Errorf("freq = %v, want 3.6 GHz", run.Ticks[0].Freq)
	}
	// CPU time: 3 threads fully busy.
	if got := run.ProcCPUSeries("p0").Mean(); math.Abs(got-3) > 1e-9 {
		t.Errorf("utilization = %v, want 3", got)
	}
}

func TestSimulateParallelPairAddsActive(t *testing.T) {
	cfg := labConfig(cpumodel.SmallIntel())
	solo0, err := Simulate(cfg, []Proc{stressProc("p0", "fibonacci", 3)}, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	solo1, err := Simulate(cfg, []Proc{stressProc("p1", "matrixprod", 3)}, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	pair, err := Simulate(cfg, []Proc{
		stressProc("p0", "fibonacci", 3),
		stressProc("p1", "matrixprod", 3),
	}, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	// Without HT/turbo, active power is additive (Fig 1 linearity):
	// A_{P0||P1} == A_{P0} + A_{P1}.
	a0 := solo0.ActiveSeries().Mean()
	a1 := solo1.ActiveSeries().Mean()
	ap := pair.ActiveSeries().Mean()
	if math.Abs(ap-(a0+a1)) > 1e-6 {
		t.Errorf("pair active %v != solo sum %v", ap, a0+a1)
	}
	// But total power is NOT additive: residual and idle are counted once.
	cp := pair.TruePowerSeries().Mean()
	c0 := solo0.TruePowerSeries().Mean()
	c1 := solo1.TruePowerSeries().Mean()
	if cp >= c0+c1 {
		t.Errorf("pair power %v should be less than solo sum %v", cp, c0+c1)
	}
	// Per-process ground truth matches the solo run (same cores, same freq).
	if got, want := pair.ProcActiveSeries("p0").Mean(), a0; math.Abs(got-want) > 1e-6 {
		t.Errorf("p0 active in pair = %v, want %v", got, want)
	}
}

func TestSimulateProductionSubAdditive(t *testing.T) {
	// §III-C: with HT/turbo, A_S ≤ ΣA_{P_i} — the pair runs at a lower
	// turbo frequency than each solo run did.
	cfg := prodConfig(cpumodel.SmallIntel())
	solo0, err := Simulate(cfg, []Proc{stressProc("p0", "float64", 3)}, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	solo1, err := Simulate(cfg, []Proc{stressProc("p1", "jmp", 3)}, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	pair, err := Simulate(cfg, []Proc{
		stressProc("p0", "float64", 3),
		stressProc("p1", "jmp", 3),
	}, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	sum := solo0.ActiveSeries().Mean() + solo1.ActiveSeries().Mean()
	if got := pair.ActiveSeries().Mean(); got >= sum {
		t.Errorf("production pair active %v not below solo sum %v", got, sum)
	}
}

func TestContentionDetected(t *testing.T) {
	cfg := labConfig(cpumodel.SmallIntel()) // 6 schedulable CPUs
	_, err := Simulate(cfg, []Proc{
		stressProc("p0", "int64", 4),
		stressProc("p1", "rand", 4),
	}, time.Second)
	if !errors.Is(err, ErrContention) {
		t.Errorf("err = %v, want ErrContention", err)
	}
	// With hyperthreading on, 8 threads fit in 12 logical CPUs.
	if _, err := Simulate(prodConfig(cpumodel.SmallIntel()), []Proc{
		stressProc("p0", "int64", 4),
		stressProc("p1", "rand", 4),
	}, time.Second); err != nil {
		t.Errorf("HT config should fit: %v", err)
	}
}

func TestHyperthreadingSiblingDiscount(t *testing.T) {
	cfg := prodConfig(cpumodel.SmallIntel())
	cfg.Turbo = false // isolate SMT effect from turbo derating
	// 6 threads fill the 6 physical cores; the 7th is an SMT sibling.
	six, err := Simulate(cfg, []Proc{stressProc("p0", "int64", 6)}, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	seven, err := Simulate(cfg, []Proc{stressProc("p0", "int64", 7)}, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	inc := seven.ActiveSeries().Mean() - six.ActiveSeries().Mean()
	perCore := six.ActiveSeries().Mean() / 6
	if math.Abs(inc-0.3*perCore) > 1e-6 {
		t.Errorf("SMT increment = %v, want %v (30%% of a core)", inc, 0.3*perCore)
	}
}

func TestTurboDerating(t *testing.T) {
	cfg := prodConfig(cpumodel.SmallIntel())
	one, err := Simulate(cfg, []Proc{stressProc("p0", "int64", 1)}, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	six, err := Simulate(cfg, []Proc{stressProc("p0", "int64", 6)}, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if one.Ticks[0].Freq != 3.9*units.GHz {
		t.Errorf("single-core freq = %v, want 3.9 GHz", one.Ticks[0].Freq)
	}
	if six.Ticks[0].Freq >= one.Ticks[0].Freq {
		t.Errorf("six-core freq %v not derated below %v", six.Ticks[0].Freq, one.Ticks[0].Freq)
	}
}

func TestFrequencyCapLowersResidual(t *testing.T) {
	// §III-B: capping SMALL INTEL to 2 GHz drops residual 28 → 17 W.
	cfg := labConfig(cpumodel.SmallIntel())
	cfg.MaxFreq = 2.0 * units.GHz
	run, err := Simulate(cfg, []Proc{stressProc("p0", "int64", 2)}, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if got := run.ResidualSeries().Mean(); math.Abs(got-17) > 1e-9 {
		t.Errorf("residual at 2 GHz cap = %v, want 17", got)
	}
}

func TestCPUQuotaHalvesCPUTimeAndResidual(t *testing.T) {
	// §IV-B: a 50 %-capped stress produced about half the residual.
	cfg := labConfig(cpumodel.SmallIntel())
	p := stressProc("p0", "int64", 2)
	p.CPUQuota = 0.5
	p.Pinned = []int{0, 1}
	run, err := Simulate(cfg, []Proc{p}, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if got := run.ProcCPUSeries("p0").Mean(); math.Abs(got-1.0) > 1e-9 {
		t.Errorf("capped utilization = %v, want 1.0 (2 threads × 0.5)", got)
	}
	if got := run.ResidualSeries().Mean(); math.Abs(got-14) > 1e-9 {
		t.Errorf("capped residual = %v, want 14", got)
	}
	// Capped + uncapped in parallel: full residual returns (§IV-B).
	q := stressProc("p1", "int64", 2)
	q.Pinned = []int{2, 3}
	both, err := Simulate(cfg, []Proc{p, q}, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if got := both.ResidualSeries().Mean(); math.Abs(got-28) > 1e-9 {
		t.Errorf("mixed residual = %v, want 28", got)
	}
}

func TestPinnedConflictRejected(t *testing.T) {
	cfg := labConfig(cpumodel.SmallIntel())
	a := stressProc("a", "int64", 1)
	a.Pinned = []int{0}
	b := stressProc("b", "rand", 1)
	b.Pinned = []int{0}
	if _, err := Simulate(cfg, []Proc{a, b}, time.Second); !errors.Is(err, ErrContention) {
		t.Errorf("err = %v, want ErrContention for conflicting pins", err)
	}
}

func TestValidationErrors(t *testing.T) {
	cfg := labConfig(cpumodel.SmallIntel())
	w, _ := workload.StressByName("int64")
	cases := []struct {
		name  string
		procs []Proc
		dur   time.Duration
	}{
		{"empty id", []Proc{{Workload: w, Threads: 1}}, time.Second},
		{"zero threads", []Proc{{ID: "x", Workload: w}}, time.Second},
		{"stop before start", []Proc{{ID: "x", Workload: w, Threads: 1, Start: time.Second, Stop: time.Millisecond}}, 2 * time.Second},
		{"pin out of range", []Proc{{ID: "x", Workload: w, Threads: 1, Pinned: []int{99}}}, time.Second},
		{"too few pins", []Proc{{ID: "x", Workload: w, Threads: 2, Pinned: []int{0}}}, time.Second},
		{"duplicate ids", []Proc{{ID: "x", Workload: w, Threads: 1}, {ID: "x", Workload: w, Threads: 1}}, time.Second},
		{"zero duration", nil, 0},
	}
	for _, tc := range cases {
		if _, err := Simulate(cfg, tc.procs, tc.dur); err == nil {
			t.Errorf("%s: no error", tc.name)
		}
	}
}

func TestStartStopWindows(t *testing.T) {
	cfg := labConfig(cpumodel.SmallIntel())
	p := stressProc("p0", "int64", 1)
	p.Start = time.Second
	p.Stop = 3 * time.Second
	run, err := Simulate(cfg, []Proc{p}, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	for ti, rec := range run.Ticks {
		_, present := run.ProcAt(ti, "p0")
		want := rec.At >= time.Second && rec.At < 3*time.Second
		if present != want {
			t.Fatalf("t=%v: presence %v, want %v", rec.At, present, want)
		}
	}
	if got := run.ProcEnd["p0"]; got != 3*time.Second {
		t.Errorf("ProcEnd = %v, want 3s", got)
	}
}

func TestScriptedWorkloadEndsRun(t *testing.T) {
	cfg := prodConfig(cpumodel.SmallIntel())
	w := workload.Workload{
		Name: "short",
		Kind: workload.App,
		Mix:  workload.CounterMix{IPC: 1},
		Script: []workload.Phase{
			{Duration: 2 * time.Second, Threads: 2, Intensity: 1, Util: 1},
		},
	}
	run, err := Simulate(cfg, []Proc{{ID: "app", Workload: w, Threads: 6}}, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if run.Duration > 3*time.Second {
		t.Errorf("run lasted %v, want ≈2s (ends when script completes)", run.Duration)
	}
	if got := run.ProcEnd["app"]; got != 2*time.Second {
		t.Errorf("ProcEnd = %v, want 2s", got)
	}
}

func TestNoiseIsDeterministicPerSeed(t *testing.T) {
	cfg := labConfig(cpumodel.SmallIntel())
	cfg.NoiseStddev = 0.25
	cfg.Seed = 42
	r1, err := Simulate(cfg, []Proc{stressProc("p0", "int64", 2)}, 3*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Simulate(cfg, []Proc{stressProc("p0", "int64", 2)}, 3*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	for i := range r1.Ticks {
		if r1.Ticks[i].Power != r2.Ticks[i].Power {
			t.Fatalf("tick %d differs across identical seeds", i)
		}
	}
	cfg.Seed = 43
	r3, err := Simulate(cfg, []Proc{stressProc("p0", "int64", 2)}, 3*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range r1.Ticks {
		if r1.Ticks[i].Power != r3.Ticks[i].Power {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical noise")
	}
	// Noise does not pollute ground truth.
	if r1.Ticks[0].TruePower != r3.Ticks[0].TruePower {
		t.Error("TruePower differs across seeds")
	}
}

func TestCountersScaleWithCPUTimeAndIPC(t *testing.T) {
	cfg := labConfig(cpumodel.SmallIntel())
	run, err := Simulate(cfg, []Proc{
		stressProc("fib", "fibonacci", 2),
		stressProc("mat", "matrixprod", 2),
	}, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	fib, _ := run.ProcAt(5, "fib")
	mat, _ := run.ProcAt(5, "mat")
	// Same CPU time, same cycles.
	if math.Abs(fib.Counters.Cycles-mat.Counters.Cycles) > 1e-6*fib.Counters.Cycles {
		t.Errorf("cycles differ: %v vs %v", fib.Counters.Cycles, mat.Counters.Cycles)
	}
	// matrixprod has IPC 2.8 vs fibonacci 0.9: ~3.1× the instructions.
	ratio := mat.Counters.Instructions / fib.Counters.Instructions
	if math.Abs(ratio-2.8/0.9) > 1e-6 {
		t.Errorf("instruction ratio = %v, want %v", ratio, 2.8/0.9)
	}
}

func TestProcIDsAndEnergy(t *testing.T) {
	cfg := labConfig(cpumodel.SmallIntel())
	run, err := Simulate(cfg, []Proc{
		stressProc("b", "int64", 1),
		stressProc("a", "rand", 1),
	}, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	ids := run.ProcIDs()
	if len(ids) != 2 || ids[0] != "a" || ids[1] != "b" {
		t.Errorf("ProcIDs = %v, want [a b]", ids)
	}
	// Energy ≈ mean power × duration.
	wantE := run.PowerSeries().Mean() * run.Duration.Seconds()
	if got := float64(run.Energy()); math.Abs(got-wantE) > 1e-6*wantE {
		t.Errorf("Energy = %v, want %v", got, wantE)
	}
}

func TestDahuScale(t *testing.T) {
	cfg := labConfig(cpumodel.Dahu())
	run, err := Simulate(cfg, []Proc{
		stressProc("p0", "float64", 16),
		stressProc("p1", "queens", 16),
	}, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	// 32 busy cores: idle 58 + residual 79 + 16×1.88 + 16×0.91.
	want := 58 + 79 + 16*1.88 + 16*0.91
	if got := run.TruePowerSeries().Mean(); math.Abs(got-want) > 1e-6 {
		t.Errorf("DAHU power = %v, want %v", got, want)
	}
}

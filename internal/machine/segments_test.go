package machine

import (
	"math"
	"testing"
	"time"

	"powerdiv/internal/cpumodel"
	"powerdiv/internal/units"
	"powerdiv/internal/workload"
)

// segScenarios is the equivalence table for the segment engine: every
// scenario class whose dynamics the change-point enumeration must prove
// piecewise-constant — churn edges, pinned threads, CPU quotas,
// multi-phase scripts with zero-duration and tick-unaligned edges, timed
// traffic rosters, idle machines — with sensor noise on so the RNG
// consumption order is pinned too.
func segScenarios(t *testing.T) []struct {
	name  string
	cfg   Config
	procs []Proc
	dur   time.Duration
} {
	t.Helper()
	noisy := func(cfg Config, seed int64) Config {
		cfg.NoiseStddev = 0.25
		cfg.Seed = seed
		return cfg
	}
	timed := func(id, fn string, threads int, start, stop time.Duration) Proc {
		p := stressProc(id, fn, threads)
		p.Start, p.Stop = start, stop
		return p
	}
	pinned := stressProc("a-pin", "int64", 2)
	pinned.Pinned = []int{0, 1}
	pinned.CPUQuota = 0.5
	quota := stressProc("b-quota", "matrixprod", 2)
	quota.Pinned = []int{2, 3}
	quota.CPUQuota = 0.25
	quota.Stop = 3 * time.Second

	// Tick-unaligned phase edges (250 ms / 1050 ms against the 100 ms
	// tick) so ceilTick rounding is exercised; Validate rejects
	// zero-duration phases in real rosters, so those are pinned at the
	// enumeration level in TestChangePointTicks instead.
	edgy := workload.Workload{
		Name: "edgy",
		Kind: workload.App,
		Mix:  workload.CounterMix{IPC: 1},
		Cost: map[string]units.Watts{"SMALL INTEL": 6, "DAHU": 6},
		Script: []workload.Phase{
			{Duration: 250 * time.Millisecond, Threads: 2, Intensity: 1, Util: 1},
			{Duration: 1050 * time.Millisecond, Threads: 1, Intensity: 0.5, Util: 0.7},
			{Duration: 700 * time.Millisecond, Threads: 2, Intensity: 0.8, Util: 1},
		},
	}

	return []struct {
		name  string
		cfg   Config
		procs []Proc
		dur   time.Duration
	}{
		{"steady-pair", noisy(labConfig(cpumodel.SmallIntel()), 7), []Proc{
			stressProc("p0", "fibonacci", 2),
			stressProc("p1", "matrixprod", 1),
		}, 5 * time.Second},
		{"churn-staggered", noisy(labConfig(cpumodel.SmallIntel()), 11), []Proc{
			timed("p0", "int64", 1, 0, 0),
			timed("p1", "int64", 1, time.Second, 3*time.Second),
			timed("p2", "rand", 1, 2*time.Second, 4500*time.Millisecond),
			timed("p3", "fibonacci", 1, 4*time.Second, 0),
		}, 6 * time.Second},
		{"idle-gap", noisy(labConfig(cpumodel.Dahu()), 13), []Proc{
			timed("a-early", "int64", 2, 0, 2*time.Second),
			timed("b-late", "fibonacci", 1, 5*time.Second, 0),
		}, 8 * time.Second},
		{"pins-and-quotas", noisy(prodConfig(cpumodel.SmallIntel()), 17), []Proc{
			pinned, quota,
		}, 4 * time.Second},
		{"unaligned-phase-edges", noisy(labConfig(cpumodel.SmallIntel()), 19), []Proc{
			{ID: "e0", Workload: edgy, Threads: 2},
			// e1's shifted boundaries collide with e0's stop below,
			// exercising change-point dedup on a real roster.
			{ID: "e1", Workload: edgy, Threads: 2, Start: 330 * time.Millisecond},
			{ID: "e2", Workload: edgy, Threads: 1, Start: 250 * time.Millisecond, Stop: 1300 * time.Millisecond},
		}, 4 * time.Second},
		{"traffic-roster", noisy(prodConfig(cpumodel.Dahu()), 23), []Proc{
			timed("fib.00", "fibonacci", 1, 0, 0),
			timed("fib.01", "fibonacci", 1, 700*time.Millisecond, 4*time.Second),
			timed("mat.00", "matrixprod", 2, 2*time.Second, 6*time.Second),
			timed("rand.00", "rand", 1, 5*time.Second, 0),
			timed("int.00", "int64", 1, 8300*time.Millisecond, 9100*time.Millisecond),
		}, 10 * time.Second},
		{"early-exit-scripted", noisy(labConfig(cpumodel.SmallIntel()), 29), []Proc{
			{ID: "s0", Workload: edgy, Threads: 2},
		}, 10 * time.Second},
		{"idle-machine", noisy(labConfig(cpumodel.SmallIntel()), 31), nil, 2 * time.Second},
	}
}

// tickCapture is a deep-copied stream: one record per tick plus the
// summary info, comparable bit for bit.
type tickCapture struct {
	recs []TickRecord
	info *StreamInfo
}

func captureStream(t *testing.T, cfg Config, procs []Proc, dur time.Duration) tickCapture {
	t.Helper()
	var recs []TickRecord
	info, err := Stream(cfg, procs, dur, func(rec *TickRecord) error {
		r := *rec
		r.Procs = append([]ProcTick(nil), rec.Procs...)
		recs = append(recs, r)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return tickCapture{recs, info}
}

func captureSegments(t *testing.T, cfg Config, procs []Proc, dur time.Duration) (tickCapture, int) {
	t.Helper()
	var recs []TickRecord
	segments := 0
	info, err := StreamSegments(cfg, procs, dur, func(seg *Segment) error {
		segments++
		for i := range seg.Powers {
			r := *seg.Rec
			r.At = seg.At(i)
			r.Power = seg.Powers[i]
			r.Procs = append([]ProcTick(nil), seg.Rec.Procs...)
			recs = append(recs, r)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return tickCapture{recs, info}, segments
}

// requireIdentical compares two captured streams bit for bit: every power
// field via Float64bits, every dense column entry exactly, and the summary
// info (tick count, duration, per-process ends).
func requireIdentical(t *testing.T, label string, want, got tickCapture) {
	t.Helper()
	if len(got.recs) != len(want.recs) {
		t.Fatalf("%s: %d ticks, want %d", label, len(got.recs), len(want.recs))
	}
	for i := range want.recs {
		w, g := &want.recs[i], &got.recs[i]
		if g.At != w.At || g.Freq != w.Freq {
			t.Fatalf("%s: tick %d header %v/%v, want %v/%v", label, i, g.At, g.Freq, w.At, w.Freq)
		}
		for _, p := range [][2]units.Watts{
			{g.Power, w.Power}, {g.TruePower, w.TruePower}, {g.Idle, w.Idle},
			{g.Residual, w.Residual}, {g.Active, w.Active},
		} {
			if math.Float64bits(float64(p[0])) != math.Float64bits(float64(p[1])) {
				t.Fatalf("%s: tick %d power field %v, want %v", label, i, p[0], p[1])
			}
		}
		if len(g.Procs) != len(w.Procs) {
			t.Fatalf("%s: tick %d column width %d, want %d", label, i, len(g.Procs), len(w.Procs))
		}
		for slot := range w.Procs {
			if g.Procs[slot] != w.Procs[slot] {
				t.Fatalf("%s: tick %d slot %d mismatch: %v vs %v", label, i, slot, g.Procs[slot], w.Procs[slot])
			}
		}
	}
	if got.info.Ticks != want.info.Ticks || got.info.Duration != want.info.Duration {
		t.Fatalf("%s: info %d/%v, want %d/%v", label,
			got.info.Ticks, got.info.Duration, want.info.Ticks, want.info.Duration)
	}
	if len(got.info.ProcEnd) != len(want.info.ProcEnd) {
		t.Fatalf("%s: ProcEnd %v, want %v", label, got.info.ProcEnd, want.info.ProcEnd)
	}
	for id, at := range want.info.ProcEnd {
		if got.info.ProcEnd[id] != at {
			t.Fatalf("%s: ProcEnd[%s] = %v, want %v", label, id, got.info.ProcEnd[id], at)
		}
	}
}

// TestSegmentEngineMatchesPerTick is the tentpole golden suite: across the
// edge-case scenario table, the segment-compiled Stream and StreamSegments
// are Float64bits-identical to the per-tick reference loop (the engine
// disabled), and the compiled runs actually coalesce ticks into fewer
// segments wherever the scenario is longer than its change-point count.
func TestSegmentEngineMatchesPerTick(t *testing.T) {
	defer SetSegmented(SetSegmented(true))
	for _, sc := range segScenarios(t) {
		t.Run(sc.name, func(t *testing.T) {
			SetSegmented(false)
			want := captureStream(t, sc.cfg, sc.procs, sc.dur)
			refSegs, perTick := captureSegments(t, sc.cfg, sc.procs, sc.dur)
			SetSegmented(true)
			got := captureStream(t, sc.cfg, sc.procs, sc.dur)
			gotSegs, compiled := captureSegments(t, sc.cfg, sc.procs, sc.dur)

			requireIdentical(t, "per-tick segments vs reference", want, refSegs)
			requireIdentical(t, "compiled stream vs reference", want, got)
			requireIdentical(t, "compiled segments vs reference", want, gotSegs)
			if perTick != len(want.recs) {
				t.Errorf("disabled engine emitted %d segments over %d ticks, want one per tick",
					perTick, len(want.recs))
			}
			if compiled >= perTick && perTick > 1 {
				t.Errorf("compiled run used %d segments over %d ticks — no coalescing", compiled, perTick)
			}
		})
	}
}

// TestStreamBatchSegmentsMatchesPerTick pins the batched entry points: for
// every repetition, StreamBatch and StreamBatchSegments under the compiled
// engine match the per-tick reference batch bit for bit, with yields
// arriving rep-ascending within each tick/segment.
func TestStreamBatchSegmentsMatchesPerTick(t *testing.T) {
	defer SetSegmented(SetSegmented(true))
	seeds := []int64{3, 41, 59}
	for _, sc := range segScenarios(t) {
		t.Run(sc.name, func(t *testing.T) {
			capture := func() [][]TickRecord {
				reps := make([][]TickRecord, len(seeds))
				_, err := StreamBatch(sc.cfg, sc.procs, sc.dur, seeds, func(rep int, rec *TickRecord) error {
					r := *rec
					r.Procs = append([]ProcTick(nil), rec.Procs...)
					reps[rep] = append(reps[rep], r)
					return nil
				})
				if err != nil {
					t.Fatal(err)
				}
				return reps
			}
			SetSegmented(false)
			want := capture()
			SetSegmented(true)
			got := capture()
			segGot := make([][]TickRecord, len(seeds))
			lastRep := -1
			_, err := StreamBatchSegments(sc.cfg, sc.procs, sc.dur, seeds, func(rep int, seg *Segment) error {
				wantRep := (lastRep + 1) % len(seeds)
				if rep != wantRep {
					t.Fatalf("rep %d yielded after %d, want %d", rep, lastRep, wantRep)
				}
				lastRep = rep
				for i := range seg.Powers {
					r := *seg.Rec
					r.At = seg.At(i)
					r.Power = seg.Powers[i]
					r.Procs = append([]ProcTick(nil), seg.Rec.Procs...)
					segGot[rep] = append(segGot[rep], r)
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			for rep := range seeds {
				w := tickCapture{want[rep], &StreamInfo{ProcEnd: map[string]time.Duration{}}}
				requireIdentical(t, "batch compiled", w,
					tickCapture{got[rep], &StreamInfo{ProcEnd: map[string]time.Duration{}}})
				requireIdentical(t, "batch segments", w,
					tickCapture{segGot[rep], &StreamInfo{ProcEnd: map[string]time.Duration{}}})
			}
		})
	}
}

// TestChangePointTicks unit-tests the enumeration: tick 0 is always
// present, zero-duration phases collapse onto their neighbours' edges,
// duplicate and beyond-horizon points are dropped, unaligned edges round
// up via ceilTick, and durations close enough to the int64 ceiling to
// overflow the ceiling division decline (ok=false → per-tick fallback).
func TestChangePointTicks(t *testing.T) {
	tick := 100 * time.Millisecond
	w := workload.Workload{
		Name: "cp", Kind: workload.App, Mix: workload.CounterMix{IPC: 1},
		Cost: map[string]units.Watts{"SMALL INTEL": 6},
		Script: []workload.Phase{
			{Duration: 250 * time.Millisecond, Threads: 1, Intensity: 1, Util: 1},
			{Duration: 0, Threads: 2, Intensity: 1, Util: 1},
			{Duration: 350 * time.Millisecond, Threads: 1, Intensity: 1, Util: 1},
		},
	}
	procs := []Proc{
		{ID: "a", Workload: w, Threads: 1},                                                       // edges at 250ms→tick 3, 600ms→tick 6
		{ID: "b", Workload: w, Threads: 1, Start: 150 * time.Millisecond},                        // start tick 2, edges at 400ms→4, 750ms→8
		{ID: "c", Workload: w, Threads: 1, Start: 200 * time.Millisecond, Stop: 5 * time.Second}, // start tick 2 (dup), stop beyond horizon
	}
	cps, _, ok := changePointTicks(procs, tick, 800*time.Millisecond, 8, nil, nil)
	if !ok {
		t.Fatal("feasible enumeration declined")
	}
	// a: boundaries 250→3, 600→6. b: start 150→2, shifted 400→4, 750→8
	// (past the 8-tick horizon, dropped). c: start 200→2 (dup), shifted
	// 450→5, 850 ≥ maxDur dropped; stop 5 s ≥ maxDur dropped.
	want := []int64{0, 2, 3, 4, 5, 6}
	if len(cps) != len(want) {
		t.Fatalf("change-points %v, want %v", cps, want)
	}
	for i := range want {
		if cps[i] != want[i] {
			t.Fatalf("change-points %v, want %v", cps, want)
		}
	}

	// A horizon at the representable ceiling cannot be proven without
	// overflowing ceilTick's arithmetic: the enumeration must decline.
	huge := time.Duration(math.MaxInt64 - 1)
	if _, _, ok := changePointTicks(procs, tick, huge, math.MaxInt64/int64(tick), nil, nil); ok {
		t.Fatal("near-overflow horizon did not decline")
	}

	// A phase boundary that would overflow the start shift is skipped, not
	// wrapped into a bogus change-point.
	far := Proc{ID: "far", Workload: w, Threads: 1, Start: time.Duration(math.MaxInt64 - int64(200*time.Millisecond))}
	cps, _, ok = changePointTicks([]Proc{far}, tick, time.Second, 10, nil, nil)
	if !ok {
		t.Fatal("overflow-guarded boundary declined the whole enumeration")
	}
	for _, k := range cps[1:] {
		if k < 0 || k >= 10 {
			t.Fatalf("out-of-range change-point %d", k)
		}
	}
}

package machine

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"powerdiv/internal/units"
)

// TickInterval returns the simulation step the config resolves to
// (DefaultTick when Tick is unset), so consumers sizing per-tick buffers
// agree with the simulator on the tick count.
func (c Config) TickInterval() time.Duration { return c.tick() }

// StreamInfo summarises a streamed simulation: the roster the yielded
// columns are indexed by, how many ticks ran, the covered duration, and
// when each process finished (the paper's T_S^{P_i}).
type StreamInfo struct {
	Config Config
	// Roster indexes the yielded Procs columns; slot order is sorted-ID
	// order, exactly as in a materialised Run.
	Roster   *Roster
	Ticks    int
	Duration time.Duration
	ProcEnd  map[string]time.Duration
}

// noiseRNG draws the per-tick sensor-noise overlay. The generator is
// created lazily on the first draw: noise-free runs (stddev <= 0) never
// pay math/rand's 607-word seeding, and noisy runs consume the source
// exactly as the historical per-tick loop did — one NormFloat64 per
// emitted tick, in tick order — so sampled powers are bit-identical.
type noiseRNG struct {
	stddev float64
	seed   int64
	rng    *rand.Rand
}

func newNoiseRNG(stddev units.Watts, seed int64) *noiseRNG {
	return &noiseRNG{stddev: float64(stddev), seed: seed}
}

// sample returns base plus one noise draw (or base unchanged for
// noise-free runs).
func (n *noiseRNG) sample(base units.Watts) units.Watts {
	if !(n.stddev > 0) {
		return base
	}
	if n.rng == nil {
		n.rng = rand.New(rand.NewSource(n.seed))
	}
	return units.Watts(float64(base) + n.rng.NormFloat64()*n.stddev)
}

// Stream runs the scenario for at most maxDur, handing each tick to yield
// as it is produced instead of materialising a Run — the O(ticks-in-flight)
// entry point of the streaming campaign pipeline. The record passed to
// yield, including its Procs column, is scratch owned by Stream and valid
// only during the call; consumers must copy whatever they keep. Ticks
// arrive in time order and are bit-identical to the records Simulate would
// store (Simulate is a collector over Stream). A non-nil error from yield
// aborts the run and is returned unwrapped; like Simulate, the run ends
// early once every process has started and finished, and oversubscription
// returns ErrContention (wrapped, with the tick time).
//
// Internally Stream walks the run segment by segment (see segments.go):
// stepTick runs once per constant segment and the cached record is
// restamped per tick with only the timestamp and the noise overlay
// varying, which is what makes cold simulation cheap for scenarios whose
// segments are much rarer than their ticks.
func Stream(cfg Config, procs []Proc, maxDur time.Duration, yield func(rec *TickRecord) error) (*StreamInfo, error) {
	ordered, info, err := streamSetup(cfg, procs, maxDur)
	if err != nil {
		return nil, err
	}
	cur := newSegCursor(cfg, ordered, maxDur)
	rng := newNoiseRNG(cfg.NoiseStddev, cfg.Seed)
	var emitted int64
	for !cur.done {
		startK, endK, err := cur.next()
		if err != nil {
			return nil, err
		}
		rec := &cur.rec
		base := rec.TruePower
		for k := startK; k < endK; k++ {
			rec.At = time.Duration(k) * cur.tick
			rec.Power = rng.sample(base)
			if err := yield(rec); err != nil {
				return nil, err
			}
		}
		emitted = endK
	}
	cur.finish(info, emitted)
	return info, nil
}

// streamSetup validates a streamed simulation's inputs and builds the
// shared prologue: the sorted scheduling order and the info skeleton whose
// roster indexes the yielded columns.
func streamSetup(cfg Config, procs []Proc, maxDur time.Duration) ([]Proc, *StreamInfo, error) {
	if err := cfg.Spec.Validate(); err != nil {
		return nil, nil, err
	}
	if maxDur <= 0 {
		return nil, nil, fmt.Errorf("machine: non-positive duration %v", maxDur)
	}
	ids := map[string]bool{}
	for _, p := range procs {
		if err := p.Validate(cfg); err != nil {
			return nil, nil, err
		}
		if ids[p.ID] {
			return nil, nil, fmt.Errorf("machine: duplicate process ID %q", p.ID)
		}
		ids[p.ID] = true
	}
	// Deterministic scheduling order regardless of caller's slice order.
	ordered := append([]Proc(nil), procs...)
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].ID < ordered[j].ID })
	// The roster's slot order is the sorted scheduling order, so a
	// process's slot is its index in ordered.
	rosterIDs := make([]string, len(ordered))
	for i, p := range ordered {
		rosterIDs[i] = p.ID
	}
	info := &StreamInfo{Config: cfg, Roster: NewRoster(rosterIDs), ProcEnd: map[string]time.Duration{}}
	return ordered, info, nil
}

// StreamBatch runs one scenario under several noise seeds in a single
// simulator pass. The deterministic dynamics — scheduling, frequency,
// utilization, true power — never depend on Config.Seed (the seed feeds
// only the sensor-noise overlay), so repetitions of a run that differ only
// in seed share every stepTick computation; only the per-tick noise draw is
// per-repetition. Each tick, yield is called once per seed in slice order
// with the repetition index and a record whose Power carries that seed's
// noise; every other field (including the shared scratch Procs column) is
// identical across the K calls. The sequence of records seen for rep k is
// bit-identical to what Stream(cfg with Seed=seeds[k], ...) would yield —
// the batch golden test pins this — because each repetition's rng is
// seeded identically and advanced exactly once per tick, in tick order.
//
// The returned info is shared across repetitions (ticks, duration and
// ProcEnd are seed-independent); its Config is the input cfg, whose own
// Seed is unused.
func StreamBatch(cfg Config, procs []Proc, maxDur time.Duration, seeds []int64, yield func(rep int, rec *TickRecord) error) (*StreamInfo, error) {
	ordered, info, rngs, err := streamBatchSetup(cfg, procs, maxDur, seeds)
	if err != nil {
		return nil, err
	}
	cur := newSegCursor(cfg, ordered, maxDur)
	var emitted int64
	for !cur.done {
		startK, endK, err := cur.next()
		if err != nil {
			return nil, err
		}
		rec := &cur.rec
		base := rec.TruePower
		for k := startK; k < endK; k++ {
			rec.At = time.Duration(k) * cur.tick
			for rep := range seeds {
				rec.Power = rngs[rep].sample(base)
				if err := yield(rep, rec); err != nil {
					return nil, err
				}
			}
		}
		emitted = endK
	}
	cur.finish(info, emitted)
	return info, nil
}

// streamBatchSetup extends streamSetup with the per-repetition noise
// sources shared by StreamBatch and StreamBatchSegments.
func streamBatchSetup(cfg Config, procs []Proc, maxDur time.Duration, seeds []int64) ([]Proc, *StreamInfo, []*noiseRNG, error) {
	if len(seeds) == 0 {
		return nil, nil, nil, fmt.Errorf("machine: batch needs at least one seed")
	}
	ordered, info, err := streamSetup(cfg, procs, maxDur)
	if err != nil {
		return nil, nil, nil, err
	}
	rngs := make([]*noiseRNG, len(seeds))
	for i, seed := range seeds {
		rngs[i] = newNoiseRNG(cfg.NoiseStddev, seed)
	}
	return ordered, info, rngs, nil
}

// StreamBatchSegments is StreamBatch at segment granularity: for every
// constant segment of the run, yield is called once per seed in slice
// order with the repetition index and the segment carrying that
// repetition's per-tick noisy powers. Within one segment every repetition
// shares Rec (and its Procs column); only Powers differs. Each
// repetition's noise source is advanced once per tick in tick order, so
// for rep k the flattened (At(i), Powers[i], Rec) sequence is
// bit-identical to Stream with Seed=seeds[k] — and to StreamBatch's
// per-tick yields. The record and power buffers are scratch valid only
// during the yield.
func StreamBatchSegments(cfg Config, procs []Proc, maxDur time.Duration, seeds []int64, yield func(rep int, seg *Segment) error) (*StreamInfo, error) {
	ordered, info, rngs, err := streamBatchSetup(cfg, procs, maxDur, seeds)
	if err != nil {
		return nil, err
	}
	cur := newSegCursor(cfg, ordered, maxDur)
	seg := Segment{Rec: &cur.rec, Interval: cur.tick}
	powers := make([][]units.Watts, len(seeds))
	var emitted int64
	for !cur.done {
		startK, endK, err := cur.next()
		if err != nil {
			return nil, err
		}
		n := endK - startK
		base := cur.rec.TruePower
		for rep := range seeds {
			powers[rep] = growPowers(powers[rep], n)
			for i := int64(0); i < n; i++ {
				powers[rep][i] = rngs[rep].sample(base)
			}
		}
		seg.StartTick = int(startK)
		cur.rec.At = time.Duration(startK) * cur.tick
		for rep := range seeds {
			seg.Powers = powers[rep]
			cur.rec.Power = seg.Powers[0]
			if err := yield(rep, &seg); err != nil {
				return nil, err
			}
		}
		emitted = endK
	}
	cur.finish(info, emitted)
	return info, nil
}

package machine

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"powerdiv/internal/units"
)

// TickInterval returns the simulation step the config resolves to
// (DefaultTick when Tick is unset), so consumers sizing per-tick buffers
// agree with the simulator on the tick count.
func (c Config) TickInterval() time.Duration { return c.tick() }

// StreamInfo summarises a streamed simulation: the roster the yielded
// columns are indexed by, how many ticks ran, the covered duration, and
// when each process finished (the paper's T_S^{P_i}).
type StreamInfo struct {
	Config Config
	// Roster indexes the yielded Procs columns; slot order is sorted-ID
	// order, exactly as in a materialised Run.
	Roster   *Roster
	Ticks    int
	Duration time.Duration
	ProcEnd  map[string]time.Duration
}

// Stream runs the scenario for at most maxDur, handing each tick to yield
// as it is produced instead of materialising a Run — the O(ticks-in-flight)
// entry point of the streaming campaign pipeline. The record passed to
// yield, including its Procs column, is scratch owned by Stream and valid
// only during the call; consumers must copy whatever they keep. Ticks
// arrive in time order and are bit-identical to the records Simulate would
// store (Simulate is a collector over Stream). A non-nil error from yield
// aborts the run and is returned unwrapped; like Simulate, the run ends
// early once every process has started and finished, and oversubscription
// returns ErrContention (wrapped, with the tick time).
func Stream(cfg Config, procs []Proc, maxDur time.Duration, yield func(rec *TickRecord) error) (*StreamInfo, error) {
	ordered, info, err := streamSetup(cfg, procs, maxDur)
	if err != nil {
		return nil, err
	}
	tick := cfg.tick()
	rng := rand.New(rand.NewSource(cfg.Seed))
	phys := cfg.Spec.Topology.PhysicalCores()
	nCPU := cfg.schedulableCPUs()
	// One scratch column backs every yielded tick; stepTick accumulates
	// into it, so it is re-zeroed before each step.
	col := make([]ProcTick, len(ordered))
	var sc tickScratch
	// rec lives outside the loop: yield takes its address, and a
	// loop-scoped record would escape to a fresh heap allocation per tick.
	var rec TickRecord

	for t := time.Duration(0); t < maxDur; t += tick {
		clear(col)
		active, err := stepTick(cfg, ordered, t, tick, phys, nCPU, info.ProcEnd, &sc, col, &rec)
		if err != nil {
			return nil, fmt.Errorf("%w at t=%v", err, t)
		}
		if cfg.NoiseStddev > 0 {
			rec.Power = units.Watts(float64(rec.Power) + rng.NormFloat64()*float64(cfg.NoiseStddev))
		}
		info.Ticks++
		info.Duration = t + tick
		if err := yield(&rec); err != nil {
			return nil, err
		}
		if !active && allStarted(ordered, t) {
			break
		}
	}
	for _, p := range ordered {
		if _, done := info.ProcEnd[p.ID]; !done {
			info.ProcEnd[p.ID] = info.Duration
		}
	}
	obsRuns.Inc()
	n := uint64(info.Ticks)
	obsTicksSimulated.Add(n)
	if n >= sc.grownTicks {
		obsScratchReused.Add(n - sc.grownTicks)
	}
	return info, nil
}

// streamSetup validates a streamed simulation's inputs and builds the
// shared prologue: the sorted scheduling order and the info skeleton whose
// roster indexes the yielded columns.
func streamSetup(cfg Config, procs []Proc, maxDur time.Duration) ([]Proc, *StreamInfo, error) {
	if err := cfg.Spec.Validate(); err != nil {
		return nil, nil, err
	}
	if maxDur <= 0 {
		return nil, nil, fmt.Errorf("machine: non-positive duration %v", maxDur)
	}
	ids := map[string]bool{}
	for _, p := range procs {
		if err := p.Validate(cfg); err != nil {
			return nil, nil, err
		}
		if ids[p.ID] {
			return nil, nil, fmt.Errorf("machine: duplicate process ID %q", p.ID)
		}
		ids[p.ID] = true
	}
	// Deterministic scheduling order regardless of caller's slice order.
	ordered := append([]Proc(nil), procs...)
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].ID < ordered[j].ID })
	// The roster's slot order is the sorted scheduling order, so a
	// process's slot is its index in ordered.
	rosterIDs := make([]string, len(ordered))
	for i, p := range ordered {
		rosterIDs[i] = p.ID
	}
	info := &StreamInfo{Config: cfg, Roster: NewRoster(rosterIDs), ProcEnd: map[string]time.Duration{}}
	return ordered, info, nil
}

// StreamBatch runs one scenario under several noise seeds in a single
// simulator pass. The deterministic dynamics — scheduling, frequency,
// utilization, true power — never depend on Config.Seed (the seed feeds
// only the sensor-noise overlay), so repetitions of a run that differ only
// in seed share every stepTick computation; only the per-tick noise draw is
// per-repetition. Each tick, yield is called once per seed in slice order
// with the repetition index and a record whose Power carries that seed's
// noise; every other field (including the shared scratch Procs column) is
// identical across the K calls. The sequence of records seen for rep k is
// bit-identical to what Stream(cfg with Seed=seeds[k], ...) would yield —
// the batch golden test pins this — because each repetition's rng is
// seeded identically and advanced exactly once per tick, in tick order.
//
// The returned info is shared across repetitions (ticks, duration and
// ProcEnd are seed-independent); its Config is the input cfg, whose own
// Seed is unused.
func StreamBatch(cfg Config, procs []Proc, maxDur time.Duration, seeds []int64, yield func(rep int, rec *TickRecord) error) (*StreamInfo, error) {
	if len(seeds) == 0 {
		return nil, fmt.Errorf("machine: batch needs at least one seed")
	}
	ordered, info, err := streamSetup(cfg, procs, maxDur)
	if err != nil {
		return nil, err
	}
	tick := cfg.tick()
	rngs := make([]*rand.Rand, len(seeds))
	for i, seed := range seeds {
		rngs[i] = rand.New(rand.NewSource(seed))
	}
	phys := cfg.Spec.Topology.PhysicalCores()
	nCPU := cfg.schedulableCPUs()
	col := make([]ProcTick, len(ordered))
	var sc tickScratch
	var rec TickRecord

	for t := time.Duration(0); t < maxDur; t += tick {
		clear(col)
		active, err := stepTick(cfg, ordered, t, tick, phys, nCPU, info.ProcEnd, &sc, col, &rec)
		if err != nil {
			return nil, fmt.Errorf("%w at t=%v", err, t)
		}
		base := rec.Power
		info.Ticks++
		info.Duration = t + tick
		for rep := range seeds {
			rec.Power = base
			if cfg.NoiseStddev > 0 {
				rec.Power = units.Watts(float64(base) + rngs[rep].NormFloat64()*float64(cfg.NoiseStddev))
			}
			if err := yield(rep, &rec); err != nil {
				return nil, err
			}
		}
		if !active && allStarted(ordered, t) {
			break
		}
	}
	for _, p := range ordered {
		if _, done := info.ProcEnd[p.ID]; !done {
			info.ProcEnd[p.ID] = info.Duration
		}
	}
	obsRuns.Inc()
	n := uint64(info.Ticks)
	obsTicksSimulated.Add(n)
	if n >= sc.grownTicks {
		obsScratchReused.Add(n - sc.grownTicks)
	}
	return info, nil
}

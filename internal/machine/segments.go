package machine

import (
	"fmt"
	"math"
	"os"
	"sort"
	"sync/atomic"
	"time"

	"powerdiv/internal/units"
)

// The segment engine exploits the piecewise-constant structure of the
// simulator's dynamics. Every input stepTick reads — process presence
// (Start/Stop edges), the active phase of each workload script, pins,
// quotas, per-core costs — changes only at a small, statically enumerable
// set of tick indices, the scenario's change-points. Between consecutive
// change-points the demands, placements, governor frequency, power
// breakdown and the whole dense ProcTick column are identical from tick to
// tick; only the timestamp and the sensor-noise draw differ. The engine
// therefore runs stepTick once per segment and stamps the cached record
// across the segment's ticks, drawing noise in tick order so the RNG
// consumption — and with it every yielded float — stays bit-identical to
// the per-tick loop.
//
// segmented gates the engine. It exists so the equivalence tests can pin
// the segment path against the per-tick reference loop; it is on by
// default. POWERDIV_NO_SEGMENTS=1 in the environment disables it at
// process start — an operational escape hatch (and an A/B lever for
// benchmarks), since both paths produce bit-identical results.
var segmented atomic.Bool

func init() { segmented.Store(os.Getenv("POWERDIV_NO_SEGMENTS") != "1") }

// SetSegmented toggles the segment engine and reports the previous
// setting. With the engine off, Stream, StreamBatch and the segment-level
// entry points step every tick individually (each tick becomes its own
// one-tick segment), which is the reference behaviour the golden tests
// compare against.
func SetSegmented(on bool) bool { return segmented.Swap(on) }

// Segmented reports whether the segment engine is enabled.
func Segmented() bool { return segmented.Load() }

// Segment is a maximal run of consecutive ticks over which the simulator's
// dynamics are constant: one stepTick evaluation covers every tick of the
// segment. Rec (including its Procs column) is scratch owned by the
// stream, shared by all ticks of the segment and valid only during the
// yield; its At and Power fields are those of the segment's first tick.
// Per-tick values come from At(i) and Powers[i].
type Segment struct {
	// Rec is the shared tick record: breakdown, frequency and the dense
	// Procs column are identical for every tick of the segment.
	Rec *TickRecord
	// StartTick is the global index of the segment's first tick.
	StartTick int
	// Interval is the tick period.
	Interval time.Duration
	// Powers holds each tick's measured machine power — the noise-free
	// total plus that tick's noise draw. len(Powers) is the segment's
	// tick count.
	Powers []units.Watts
}

// Ticks returns the number of ticks the segment covers.
func (s *Segment) Ticks() int { return len(s.Powers) }

// At returns the timestamp of the segment's i-th tick. Tick timestamps
// are exact integer multiples of the interval, so this matches the
// per-tick loop's accumulated time bit for bit.
func (s *Segment) At(i int) time.Duration {
	return time.Duration(int64(s.StartTick)+int64(i)) * s.Interval
}

// ceilTick returns the first tick index k (with t_k = k·tick) such that
// t_k >= d — the tick at which a condition "t >= d" first flips true.
// Times at or before the origin flip at tick 0.
func ceilTick(d, tick time.Duration) int64 {
	if d <= 0 {
		return 0
	}
	return (int64(d) + int64(tick) - 1) / int64(tick)
}

// changePointTicks enumerates the sorted, deduplicated tick indices at
// which any stepTick input can change: each process's first running tick
// (ceil of Start, which is also where allStarted can flip), its Stop edge,
// and every workload phase boundary shifted by the process's start. Tick 0
// is always a change-point. Indices at or beyond totalTicks are dropped.
//
// ok is false when the enumeration cannot prove the dynamics
// piecewise-constant within int64 time arithmetic (durations close enough
// to the representable ceiling that the ceiling division could overflow);
// callers then fall back to per-tick stepping, which needs no such proof.
func changePointTicks(procs []Proc, tick, maxDur time.Duration, totalTicks int64, buf []int64, boundsBuf []time.Duration) (cps []int64, bounds []time.Duration, ok bool) {
	if int64(maxDur) > math.MaxInt64-int64(tick) {
		return buf, boundsBuf, false
	}
	cps = append(buf[:0], 0)
	add := func(d time.Duration) {
		// d >= maxDur implies ceilTick(d) >= totalTicks: past the horizon.
		if d >= maxDur {
			return
		}
		if k := ceilTick(d, tick); k > 0 && k < totalTicks {
			cps = append(cps, k)
		}
	}
	bounds = boundsBuf
	for i := range procs {
		p := &procs[i]
		add(p.Start)
		if p.Stop != 0 {
			add(p.Stop)
		}
		bounds = p.Workload.PhaseBoundaries(bounds[:0])
		for _, b := range bounds {
			// A boundary beyond the representable time line cannot occur
			// within maxDur (bounded above); skip it rather than overflow.
			if p.Start > 0 && int64(b) > math.MaxInt64-int64(p.Start) {
				continue
			}
			add(p.Start + b)
		}
	}
	sort.Slice(cps, func(i, j int) bool { return cps[i] < cps[j] })
	out := cps[:1]
	for _, k := range cps[1:] {
		if k != out[len(out)-1] {
			out = append(out, k)
		}
	}
	return out, bounds, true
}

// segCursor walks one run segment by segment. Each next call evaluates
// stepTick at the head of the following segment and reports the tick range
// it covers; the evaluated record and column stay valid until the next
// call. When the engine is disabled (or the change-point enumeration
// declined), every segment is a single tick — the reference per-tick loop
// expressed in the same shape.
type segCursor struct {
	cfg        Config
	ordered    []Proc
	tick       time.Duration
	phys, nCPU int
	totalTicks int64
	// cps holds the change-point tick indices when the engine is active;
	// nil means per-tick fallback.
	cps []int64
	j   int   // index into cps of the next unentered change-point
	k   int64 // next tick index to cover
	sc  tickScratch
	col []ProcTick
	rec TickRecord
	// ends records each process's observed finish time by roster slot
	// (endUnset until seen) — the slot-indexed replacement for the old
	// per-tick map.
	ends     []time.Duration
	segments uint64
	done     bool
}

func newSegCursor(cfg Config, ordered []Proc, maxDur time.Duration) *segCursor {
	tick := cfg.tick()
	c := &segCursor{
		cfg:        cfg,
		ordered:    ordered,
		tick:       tick,
		phys:       cfg.Spec.Topology.PhysicalCores(),
		nCPU:       cfg.schedulableCPUs(),
		totalTicks: (int64(maxDur) + int64(tick) - 1) / int64(tick),
		col:        make([]ProcTick, len(ordered)),
		ends:       make([]time.Duration, len(ordered)),
	}
	for i := range c.ends {
		c.ends[i] = endUnset
	}
	if segmented.Load() {
		if cps, _, ok := changePointTicks(ordered, tick, maxDur, c.totalTicks, nil, nil); ok {
			c.cps = cps
		}
	}
	return c
}

// next advances to the following segment. It evaluates stepTick at the
// segment's first tick into c.rec/c.col and returns the half-open tick
// range [startK, endK) the evaluation covers. A terminal segment — every
// process started and none active, where the per-tick loop breaks after
// one yield — covers exactly one tick and ends the run. next must not be
// called after c.done is set.
func (c *segCursor) next() (startK, endK int64, err error) {
	startK = c.k
	t := time.Duration(startK) * c.tick
	clear(c.col)
	active, err := stepTick(c.cfg, c.ordered, t, c.tick, c.phys, c.nCPU, c.ends, &c.sc, c.col, &c.rec)
	if err != nil {
		return 0, 0, fmt.Errorf("%w at t=%v", err, t)
	}
	c.segments++
	endK = c.totalTicks
	if c.cps != nil {
		for c.j < len(c.cps) && c.cps[c.j] <= startK {
			c.j++
		}
		if c.j < len(c.cps) {
			endK = c.cps[c.j]
		}
	} else if startK+1 < endK {
		endK = startK + 1
	}
	// The early-exit condition is constant within a segment: demands (and
	// hence active) only change at change-points, and allStarted flips at
	// per-process start ticks, which are change-points too. A terminal
	// segment therefore emits exactly one tick, like the per-tick loop's
	// post-yield break.
	if !active && allStarted(c.ordered, t) {
		endK = startK + 1
		c.done = true
	}
	c.k = endK
	if c.k >= c.totalTicks {
		c.done = true
	}
	return startK, endK, nil
}

// finish folds the cursor's bookkeeping into info once the stream ends:
// tick count, covered duration, the per-process end times (processes never
// observed finished end with the run), and the machine-level obs counters.
func (c *segCursor) finish(info *StreamInfo, emitted int64) {
	info.Ticks = int(emitted)
	info.Duration = time.Duration(emitted) * c.tick
	for i := range c.ordered {
		if c.ends[i] != endUnset {
			info.ProcEnd[c.ordered[i].ID] = c.ends[i]
		} else {
			info.ProcEnd[c.ordered[i].ID] = info.Duration
		}
	}
	obsRuns.Inc()
	n := uint64(emitted)
	obsTicksSimulated.Add(n)
	if n >= c.sc.grownTicks {
		obsScratchReused.Add(n - c.sc.grownTicks)
	}
	obsSegments.Add(c.segments)
}

// growPowers returns a power buffer with length n, reusing buf's storage
// when it is large enough.
func growPowers(buf []units.Watts, n int64) []units.Watts {
	if int64(cap(buf)) < n {
		return make([]units.Watts, n)
	}
	return buf[:n]
}

// StreamSegments runs the scenario like Stream but hands whole segments to
// yield instead of individual ticks: seg.Rec (breakdown, frequency, dense
// Procs column) is shared by all seg.Ticks() ticks, and seg.Powers carries
// each tick's noisy machine power. Consuming segments instead of ticks
// lets observers that are themselves piecewise-constant (see
// models.SegmentModel) skip per-tick recomputation entirely. The sequence
// of (At(i), Powers[i], Rec) triples is bit-identical to the records
// Stream would yield: the same stepTick values are reused and the noise
// RNG is consumed once per tick in tick order. Like Stream, the record and
// power buffer are scratch valid only during the yield.
func StreamSegments(cfg Config, procs []Proc, maxDur time.Duration, yield func(seg *Segment) error) (*StreamInfo, error) {
	ordered, info, err := streamSetup(cfg, procs, maxDur)
	if err != nil {
		return nil, err
	}
	cur := newSegCursor(cfg, ordered, maxDur)
	rng := newNoiseRNG(cfg.NoiseStddev, cfg.Seed)
	seg := Segment{Rec: &cur.rec, Interval: cur.tick}
	var emitted int64
	for !cur.done {
		startK, endK, err := cur.next()
		if err != nil {
			return nil, err
		}
		n := endK - startK
		seg.Powers = growPowers(seg.Powers, n)
		base := cur.rec.TruePower
		for i := int64(0); i < n; i++ {
			seg.Powers[i] = rng.sample(base)
		}
		seg.StartTick = int(startK)
		cur.rec.At = time.Duration(startK) * cur.tick
		cur.rec.Power = seg.Powers[0]
		emitted = endK
		if err := yield(&seg); err != nil {
			return nil, err
		}
	}
	cur.finish(info, emitted)
	return info, nil
}

// This file is the library's public facade: the types and constructors a
// downstream user needs to run the paper's protocol, divide power with the
// evaluated models, or meter a real machine — re-exported from the
// internal packages so the import surface is a single package.
//
// The full machinery (simulator internals, experiment drivers for each
// paper figure, report rendering) lives in the internal packages; the
// facade deliberately exposes the stable workflow only:
//
//	ctx := powerdiv.NewLabContext(powerdiv.SmallIntel(), 42)
//	fib, _ := powerdiv.StressApp("fibonacci", 3)
//	mat, _ := powerdiv.StressApp("matrixprod", 3)
//	s := powerdiv.Scenario{Apps: []powerdiv.AppSpec{fib, mat}}
//	baselines, _ := powerdiv.MeasureBaselines(ctx, s.Apps)
//	ev, _ := powerdiv.EvaluatePair(ctx, s, powerdiv.Scaphandre(), baselines, powerdiv.ObjectiveActive, 0)
//	fmt.Println(ev.AE) // Equation 5
package powerdiv

import (
	"time"

	"powerdiv/internal/cpumodel"
	"powerdiv/internal/division"
	"powerdiv/internal/energyacct"
	"powerdiv/internal/isoest"
	"powerdiv/internal/livemeter"
	"powerdiv/internal/machine"
	"powerdiv/internal/models"
	"powerdiv/internal/protocol"
	"powerdiv/internal/units"
	"powerdiv/internal/workload"
)

// Physical value types.
type (
	// Watts is instantaneous power.
	Watts = units.Watts
	// Joules is energy.
	Joules = units.Joules
	// Hertz is frequency.
	Hertz = units.Hertz
)

// Machine modelling.
type (
	// MachineSpec is a machine calibration: topology, frequency domain
	// and power model.
	MachineSpec = cpumodel.Spec
	// MachineConfig configures a simulated machine run (spec plus
	// hyperthreading/turbo toggles, sampling period, sensor noise, seed).
	MachineConfig = machine.Config
	// Proc is one process in a simulated scenario.
	Proc = machine.Proc
	// Run is a completed simulation with its trace and ground truth.
	Run = machine.Run
	// Workload describes what a process executes.
	Workload = workload.Workload
)

// Protocol types.
type (
	// Context is the fixed experimental conditions of an evaluation.
	Context = protocol.Context
	// AppSpec is one application instance under evaluation.
	AppSpec = protocol.AppSpec
	// Scenario is a parallel scenario of applications.
	Scenario = protocol.Scenario
	// Evaluation is a scored model-on-scenario outcome (Equation 5).
	Evaluation = protocol.Evaluation
	// Objective selects the truth construction models are scored against.
	Objective = protocol.Objective
	// Baseline is a phase 1 isolated measurement.
	Baseline = division.Baseline
	// Shares maps application IDs to fractional shares.
	Shares = division.Shares
	// Family is a residual allocation policy family (F1/F2/F3).
	Family = division.Family
)

// Model types.
type (
	// Model is a streaming power division model.
	Model = models.Model
	// ModelFactory constructs model instances per scenario.
	ModelFactory = models.Factory
	// Ledger accumulates attributed energy per application.
	Ledger = energyacct.Ledger
	// LiveMeter divides real RAPL power among real processes.
	LiveMeter = livemeter.Meter
)

// Objectives (see protocol.Objective).
const (
	ObjectiveActive          = protocol.ObjectiveActive
	ObjectiveResidualAware   = protocol.ObjectiveResidualAware
	ObjectiveNominalResidual = protocol.ObjectiveNominalResidual
)

// Residual allocation families (see division.Family).
const (
	F1 = division.F1
	F2 = division.F2
	F3 = division.F3
)

// SmallIntel returns the paper's SMALL INTEL machine calibration
// (6-core/12-thread Xeon W-2133).
func SmallIntel() MachineSpec { return cpumodel.SmallIntel() }

// Dahu returns the paper's DAHU calibration (2×16-core Xeon Gold 6130).
func Dahu() MachineSpec { return cpumodel.Dahu() }

// NewLabContext returns the paper's laboratory context (hyperthreading and
// turbo disabled) on the given machine with default protocol settings.
func NewLabContext(spec MachineSpec, seed int64) Context {
	ctx := protocol.DefaultContext(machine.Config{Spec: spec, NoiseStddev: 0.25, Seed: seed})
	ctx.Seed = seed
	return ctx
}

// NewProductionContext returns the paper's production context (both
// enabled).
func NewProductionContext(spec MachineSpec, seed int64) Context {
	ctx := protocol.DefaultContext(machine.Config{
		Spec:           spec,
		Hyperthreading: true,
		Turbo:          true,
		NoiseStddev:    0.25,
		Seed:           seed,
	})
	ctx.Seed = seed
	return ctx
}

// StressApp builds an application from one of the 12 Table III stress
// functions, e.g. StressApp("matrixprod", 3).
func StressApp(fn string, threads int) (AppSpec, error) { return protocol.StressApp(fn, threads) }

// StressWorkloads returns the Table III stress workload set.
func StressWorkloads() []Workload { return workload.StressSet() }

// NewWorkload starts a builder for a custom workload definition.
func NewWorkload(name string) *workload.Builder { return workload.NewBuilder(name) }

// PhoronixWorkloads returns the Table IV application set.
func PhoronixWorkloads() []Workload { return workload.PhoronixSet() }

// Simulate runs processes on a simulated machine for at most maxDur.
func Simulate(cfg MachineConfig, procs []Proc, maxDur time.Duration) (*Run, error) {
	return machine.Simulate(cfg, procs, maxDur)
}

// MeasureBaselines runs protocol phase 1 for the applications.
func MeasureBaselines(ctx Context, apps []AppSpec) (map[string]Baseline, error) {
	return protocol.MeasureBaselinesParallel(ctx, apps)
}

// EvaluatePair runs protocol phases 2–3: the scenario executes, the model
// divides its power, Equation 5 scores it. r0 is only used by
// ObjectiveNominalResidual.
func EvaluatePair(ctx Context, s Scenario, f ModelFactory, baselines map[string]Baseline, obj Objective, r0 Watts) (Evaluation, error) {
	return protocol.EvaluatePair(ctx, s, f, baselines, obj, r0)
}

// EvaluateCampaign evaluates a model over many scenarios (in parallel
// across CPU cores; results are deterministic).
func EvaluateCampaign(ctx Context, scenarios []Scenario, f ModelFactory, obj Objective, r0 Watts) ([]Evaluation, error) {
	return protocol.EvaluateCampaignParallel(ctx, scenarios, f, obj, r0)
}

// StressPairs generates the paper's pair campaign scenario list.
func StressPairs(fns []string, sizes []int) ([]Scenario, error) {
	return protocol.StressPairs(fns, sizes)
}

// TimelineApp is an application with a lifetime in a dynamic scenario.
type TimelineApp = protocol.TimelineApp

// TimelineResult scores a model over a dynamic scenario (error and
// estimate coverage).
type TimelineResult = protocol.TimelineResult

// EvaluateTimeline scores a model under application arrivals and
// departures — the paper's Fig 11 production setting, quantified.
func EvaluateTimeline(ctx Context, apps []TimelineApp, f ModelFactory, baselines map[string]Baseline, maxDur time.Duration) (TimelineResult, error) {
	return protocol.EvaluateTimeline(ctx, apps, f, baselines, maxDur)
}

// Scaphandre returns the CPU-time-share division model.
func Scaphandre() ModelFactory { return models.NewScaphandre() }

// PowerAPI returns the counter-regression division model with the paper's
// observed behaviours (learning windows, many-core instability).
func PowerAPI() ModelFactory { return models.NewPowerAPI(models.DefaultPowerAPIConfig()) }

// Kepler returns the instruction-share division model.
func Kepler() ModelFactory { return models.NewKepler() }

// SmartWatts returns the per-frequency-bin calibrating division model.
func SmartWatts() ModelFactory { return models.NewSmartWatts(models.DefaultSmartWattsConfig()) }

// RatioPreservingF2 returns the paper's proposed F2 model driven by
// isolated per-core baselines (watts per core of CPU usage).
func RatioPreservingF2(baselinePerCore map[string]Watts) ModelFactory {
	return models.NewF2(baselinePerCore)
}

// ResidualAware returns the calibrated division model that fixes the
// paper's challenge C3: it decomposes machine power into idle, residual
// and active parts using the machine calibration and attributes residual
// excess to the processes causing it.
func ResidualAware(spec MachineSpec) ModelFactory {
	return models.NewResidualAwareFromSpec(spec)
}

// TrainProfileEstimator fits the §VI isolated-consumption estimator from
// instrumented solo-run samples.
func TrainProfileEstimator(samples []isoest.Sample) (*isoest.Estimator, error) {
	return isoest.Train(samples)
}

// ProfileF2 returns the deployable F2 model driven by a trained profile
// estimator.
func ProfileF2(est *isoest.Estimator) ModelFactory { return isoest.NewProfileF2(est) }

// NewLedger returns an empty per-application energy account.
func NewLedger() *Ledger { return energyacct.New() }

// OpenLiveMeter opens a live power meter over the machine's real RAPL and
// procfs (pass zero-value config for the system defaults). It fails with a
// wrapped rapl.ErrNoRAPL on machines without RAPL.
func OpenLiveMeter(cfg livemeter.Config) (*LiveMeter, error) { return livemeter.Open(cfg) }

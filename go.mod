module powerdiv

go 1.22
